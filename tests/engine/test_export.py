"""Tests for the JSONL metrics exporter."""

import json

import pytest

from repro.engine.export import export_jsonl, load_jsonl
from repro.engine.simulation import Simulator
from repro.motion.uniform import RandomWalkGenerator
from repro.queries import IGERNMonoQuery, QueryPosition


@pytest.fixture(scope="module")
def result():
    sim = Simulator(RandomWalkGenerator(100, seed=31, step_sigma=0.03), grid_size=16)
    sim.add_query(
        "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
    )
    return sim.run(6)


class TestExport:
    def test_roundtrip_structure(self, result, tmp_path):
        path = export_jsonl(result, tmp_path / "run.jsonl")
        loaded = load_jsonl(path)
        assert len(loaded["summary"]) == 1
        assert len(loaded["ticks"]) == 7  # initial + 6 incremental

    def test_tick_records_content(self, result, tmp_path):
        path = export_jsonl(result, tmp_path / "run.jsonl")
        loaded = load_jsonl(path)
        first = loaded["ticks"][0]
        assert first["query"] == "q"
        assert first["tick"] == 0
        assert first["answer_size"] == len(first["answer"])
        assert "calls_NN" in first["ops"]

    def test_summary_aggregates_match(self, result, tmp_path):
        path = export_jsonl(result, tmp_path / "run.jsonl")
        loaded = load_jsonl(path)
        summary = loaded["summary"][0]["queries"]["q"]
        assert summary["executions"] == 7
        assert abs(summary["total_time"] - result["q"].total_time) < 1e-12

    def test_file_is_valid_jsonl(self, result, tmp_path):
        path = export_jsonl(result, tmp_path / "run.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_load_rejects_unknown_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            load_jsonl(path)

    def test_blank_lines_skipped(self, result, tmp_path):
        path = export_jsonl(result, tmp_path / "run.jsonl")
        path.write_text(path.read_text() + "\n\n")
        loaded = load_jsonl(path)
        assert len(loaded["summary"]) == 1
