"""Tests for the continuous query manager (runtime lifecycle + deltas)."""

import pytest

from repro.engine.manager import AnswerChange, ContinuousQueryManager
from repro.engine.simulation import Simulator
from repro.motion.uniform import RandomWalkGenerator
from repro.queries import BruteForceMonoQuery, IGERNMonoQuery, QueryPosition


def make_sim(n=150, seed=1, sigma=0.04):
    return Simulator(RandomWalkGenerator(n, seed=seed, step_sigma=sigma), grid_size=16)


def igern_at(sim, point):
    return IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=point))


class TestLifecycle:
    def test_register_and_first_change(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        changes = manager.run(1)
        assert changes, "the first answer arrives as a change from the empty set"
        assert changes[0].query == "q"
        assert changes[0].removed == frozenset()
        assert manager.current_answer("q") == changes[0].answer

    def test_unregister_stops_events(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        manager.run(2)
        manager.unregister("q")
        assert manager.run(3) == []
        assert manager.current_answer("q") == frozenset()

    def test_register_mid_run(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("a", igern_at(sim, (0.3, 0.3)))
        manager.run(3)
        manager.register("b", igern_at(sim, (0.7, 0.7)))
        changes = manager.run(1)
        assert any(c.query == "b" for c in changes)


class TestPauseResume:
    def test_paused_query_emits_nothing(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        manager.run(1)
        manager.pause("q")
        assert all(c.query != "q" for c in manager.run(5))

    def test_resume_is_correct_from_stale_state(self):
        """The incremental step redraws all bisectors, so a query paused
        for many ticks resumes with an exact answer."""
        sim = make_sim(n=200, seed=9)
        manager = ContinuousQueryManager(sim)
        manager.register("igern", igern_at(sim, (0.5, 0.5)))
        manager.register(
            "brute",
            BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5))),
        )
        manager.run(2)
        manager.pause("igern")
        manager.run(10)  # the world moves on without the query
        manager.resume("igern")
        manager.run(1)
        assert manager.current_answer("igern") == manager.current_answer("brute")

    def test_pause_unknown_raises(self):
        manager = ContinuousQueryManager(make_sim())
        with pytest.raises(KeyError):
            manager.pause("ghost")


class FrozenGenerator:
    """Wraps a generator but never moves anything after the initial load."""

    def __init__(self, base):
        self._base = base

    def initial(self):
        return self._base.initial()

    def step(self, dt=1.0):
        return []


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        events = []
        manager.subscribe(events.append, query="q")
        manager.run(1)
        seen = len(events)
        assert seen >= 1
        assert manager.unsubscribe(events.append, query="q") is True
        manager.run(5)
        assert len(events) == seen, "no deliveries after unsubscribe"

    def test_unsubscribe_requires_matching_scope(self):
        """A global subscription is distinct from any per-query one."""
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        events = []
        manager.subscribe(events.append)  # global
        assert manager.unsubscribe(events.append, query="q") is False
        manager.run(1)
        assert events, "the global subscription must survive the mismatched removal"
        assert manager.unsubscribe(events.append) is True

    def test_unsubscribe_unknown_callback_is_noop(self):
        manager = ContinuousQueryManager(make_sim())
        assert manager.unsubscribe(lambda change: None) is False

    def test_duplicate_subscription_removed_once_per_call(self):
        sim = Simulator(FrozenGenerator(RandomWalkGenerator(50, seed=5)), grid_size=8)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        events = []
        manager.subscribe(events.append, query="q")
        manager.subscribe(events.append, query="q")
        manager.run(1)  # single change (first answer), delivered twice
        assert len(events) == 2
        assert manager.unsubscribe(events.append, query="q") is True
        manager.unregister("q")
        manager.register("q2", igern_at(sim, (0.5, 0.5)))
        manager.subscribe(events.append, query="q2")


class TestResumeDeltas:
    def test_no_spurious_change_on_resume_with_unchanged_answer(self):
        """Resuming in an unchanged world must publish nothing."""
        sim = Simulator(FrozenGenerator(RandomWalkGenerator(80, seed=3)), grid_size=8)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        first = manager.run(1)
        assert len(first) == 1
        manager.pause("q")
        manager.run(3)
        manager.resume("q")
        assert manager.run(2) == [], (
            "resume with an identical answer must not re-announce it"
        )

    def test_resume_delta_is_relative_to_last_published_answer(self):
        """The post-resume change skips every intermediate state: its
        added/removed sets are the delta from the pre-pause answer."""
        sim = make_sim(n=200, seed=11)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        manager.run(2)
        before = manager.current_answer("q")
        manager.pause("q")
        manager.run(8)
        manager.resume("q")
        changes = [c for c in manager.run(1) if c.query == "q"]
        if changes:
            change = changes[0]
            assert change.added == change.answer - before
            assert change.removed == before - change.answer
            assert manager.current_answer("q") == change.answer
        else:
            assert manager.current_answer("q") == before


class TestSubscriberOrdering:
    def test_per_query_subscribers_run_before_global(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        order = []
        manager.subscribe(lambda c: order.append(("per-query", c.tick)), query="q")
        manager.subscribe(lambda c: order.append(("global", c.tick)))
        manager.run(4)
        assert order, "at least the first answer must be delivered"
        # Per change (= per tick entry pair), per-query precedes global.
        for i in range(0, len(order), 2):
            assert order[i][0] == "per-query"
            assert order[i + 1][0] == "global"
            assert order[i][1] == order[i + 1][1]

    def test_subscription_order_preserved_within_scope(self):
        sim = Simulator(FrozenGenerator(RandomWalkGenerator(60, seed=2)), grid_size=8)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        order = []
        manager.subscribe(lambda c: order.append("first"))
        manager.subscribe(lambda c: order.append("second"))
        manager.run(1)
        assert order == ["first", "second"]


class TestSubscriptions:
    def test_per_query_and_global(self):
        sim = make_sim()
        manager = ContinuousQueryManager(sim)
        per_query = []
        global_log = []
        manager.register("a", igern_at(sim, (0.2, 0.8)), on_change=per_query.append)
        manager.register("b", igern_at(sim, (0.8, 0.2)))
        manager.subscribe(global_log.append)
        manager.run(5)
        assert all(isinstance(c, AnswerChange) for c in global_log)
        assert all(c.query == "a" for c in per_query)
        assert {c.query for c in global_log} >= {"a"}
        # Global sees at least everything the per-query subscriber saw.
        assert len(global_log) >= len(per_query)

    def test_deltas_reconstruct_answers(self):
        sim = make_sim(seed=4)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        running = set()
        for change in manager.run(12):
            running -= set(change.removed)
            running |= set(change.added)
            assert frozenset(running) == change.answer

    def test_no_change_no_event(self):
        # A frozen world produces exactly one event (the first answer).
        class FrozenGenerator:
            def __init__(self, base):
                self._base = base

            def initial(self):
                return self._base.initial()

            def step(self, dt=1.0):
                return []

        sim = Simulator(FrozenGenerator(RandomWalkGenerator(50, seed=5)), grid_size=8)
        manager = ContinuousQueryManager(sim)
        manager.register("q", igern_at(sim, (0.5, 0.5)))
        changes = manager.run(6)
        assert len(changes) == 1

    def test_negative_ticks(self):
        manager = ContinuousQueryManager(make_sim())
        with pytest.raises(ValueError):
            manager.run(-1)
