"""Property-based soundness of safe-region answer leases.

The lease contract (:mod:`repro.leases`): while every data object stays
within ``object_budget`` of its issue-time position, the query point
stays inside the safe region, and no object is inserted or removed, the
issue-time answer set is *the* exact answer.  These tests hammer that
claim directly — derive a lease from a random configuration, perturb
every object and the query point within the stated budgets, and assert
the brute-force oracle (exact adaptive predicates, no shared code with
the lease derivation) still returns exactly the leased answer.

Adversarial companions pin the boundary behavior: bit-equal ties (built
on lattice coordinates, where distances agree to the last bit) must
refuse a lease outright — at a tie, *any* nonzero motion can flip the
answer, so no budget is sound — and a displacement landing exactly on
the stated budget must still preserve the answer.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.geometry.rectangle import Rect
from repro.grid.index import GridIndex
from repro.leases import derive_bi_lease, derive_mono_lease
from repro.queries import (
    IGERNBiQuery,
    IGERNMonoQuery,
    QueryPosition,
    brute_bi_rnn,
    brute_mono_rnn,
)

EXTENT = Rect(0.0, 0.0, 1.0, 1.0)


def _mono_lease(positions, qid, qpoint, k):
    """Evaluate IGERN once and derive a lease from its final state."""
    grid = GridIndex(8, extent=EXTENT)
    for oid, (x, y) in positions.items():
        grid.insert(oid, (x, y), 0)
    if qid is not None:
        position = QueryPosition(grid, query_id=qid)
    else:
        position = QueryPosition(grid, fixed=qpoint)
    query = IGERNMonoQuery(grid, position, k=k)
    query.initial()
    return derive_mono_lease(query._state, grid, k, qid)


def _bi_lease(positions_a, positions_b, qid, k):
    grid = GridIndex(8, extent=EXTENT)
    for oid, (x, y) in positions_a.items():
        grid.insert(oid, (x, y), "A")
    for oid, (x, y) in positions_b.items():
        grid.insert(oid, (x, y), "B")
    query = IGERNBiQuery(
        grid, QueryPosition(grid, query_id=qid), cat_a="A", cat_b="B", k=k
    )
    query.initial()
    return derive_bi_lease(query._state, grid, "A", "B", k, qid)


def _perturb(positions, budget, rng, exclude=()):
    """Move every object a random distance within ``budget`` (strictly —
    the radius is shaved so float rounding cannot overshoot), asserting
    the *actual* float displacement respects the stated budget."""
    out = {}
    for oid, (x, y) in positions.items():
        if oid in exclude:
            out[oid] = (x, y)
            continue
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = rng.uniform(0.0, budget) * (1.0 - 1e-9)
        nx = min(1.0, max(0.0, x + radius * math.cos(angle)))
        ny = min(1.0, max(0.0, y + radius * math.sin(angle)))
        assert math.hypot(nx - x, ny - y) <= budget
        out[oid] = (nx, ny)
    return out


def _perturbed_query(lease, rng):
    """A query point inside the safe region (falls back to the issue
    position, which is inside by construction)."""
    qx, qy = lease.qpos
    s = (lease.query_budget / math.sqrt(2.0)) * (1.0 - 1e-9)
    candidate = (qx + rng.uniform(-s, s), qy + rng.uniform(-s, s))
    if lease.contains(candidate):
        return candidate
    return lease.qpos


coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
points = st.tuples(coord, coord)


class TestMonoLeaseSoundness:
    @settings(max_examples=80, deadline=None)
    @given(
        pts=st.lists(points, min_size=3, max_size=10, unique=True),
        k=st.integers(min_value=1, max_value=2),
        moving=st.booleans(),
        perturb_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_answer_invariant_under_budgeted_perturbation(
        self, pts, k, moving, perturb_seed
    ):
        positions = {i: p for i, p in enumerate(pts)}
        if moving:
            qid, qpoint = 0, None
        else:
            qid, qpoint = None, pts[0]
        lease = _mono_lease(positions, qid, qpoint, k)
        if lease is None:
            return  # refusing to certify is always sound
        assert lease.object_budget > 0.0 and lease.query_budget > 0.0
        rng = random.Random(perturb_seed)
        exclude = (qid,) if qid is not None else ()
        moved = _perturb(positions, lease.object_budget, rng, exclude=exclude)
        qnew = _perturbed_query(lease, rng)
        if qid is not None:
            moved[qid] = qnew
        oracle = brute_mono_rnn(moved, qnew, query_id=qid, k=k)
        assert oracle == set(lease.answer), (
            f"lease certified {sorted(lease.answer)!r} but the oracle says "
            f"{sorted(oracle)!r} after a within-budget perturbation "
            f"(m={lease.object_budget!r}, eps={lease.query_budget!r})"
        )

    def test_boundary_displacement_exactly_at_budget(self):
        """A mover landing exactly on the object budget keeps the answer."""
        positions = {1: (0.2, 0.5), 2: (0.8, 0.5), 3: (0.5, 0.9)}
        lease = _mono_lease(positions, None, (0.5, 0.5), 1)
        assert lease is not None
        m = lease.object_budget
        moved = dict(positions)
        nx = positions[1][0] + m
        # The stated contract is closed at the budget: displacement == m
        # is within it.  Guard against float addition overshooting m.
        while nx - positions[1][0] > m:
            nx = math.nextafter(nx, 0.0)
        assert nx - positions[1][0] <= m
        moved[1] = (nx, positions[1][1])
        oracle = brute_mono_rnn(moved, lease.qpos, query_id=None, k=1)
        assert oracle == set(lease.answer)

    def test_bit_equal_tie_refuses_lease(self):
        """An exact tie (lattice coordinates) has zero slack: any nonzero
        motion can flip the answer, so the only sound lease is none."""
        # dist(o1, q) == dist(o1, w) == 0.25, bit-equal.
        positions = {1: (0.25, 0.5), 2: (0.0, 0.5)}
        assert _mono_lease(positions, None, (0.5, 0.5), 1) is None

    @settings(max_examples=40, deadline=None)
    @given(
        ix=st.integers(min_value=1, max_value=7),
        iy=st.integers(min_value=1, max_value=7),
        d=st.integers(min_value=1, max_value=3),
    )
    def test_lattice_mirror_ties_refuse_lease(self, ix, iy, d):
        """Mirror pairs on the 1/8 lattice tie bit-equally around the
        query; the derivation must refuse every such configuration."""
        q = (ix / 8.0, iy / 8.0)
        if not (0.0 <= q[0] - d / 8.0 and q[0] + d / 8.0 <= 1.0):
            return
        mid = (q[0] - d / 16.0, q[1])  # equidistant from q and the witness
        positions = {1: mid, 2: (q[0] - d / 8.0, q[1])}
        assert _mono_lease(positions, None, q, 1) is None


class TestBiLeaseSoundness:
    @settings(max_examples=60, deadline=None)
    @given(
        pts_a=st.lists(points, min_size=2, max_size=6, unique=True),
        pts_b=st.lists(points, min_size=1, max_size=6, unique=True),
        k=st.integers(min_value=1, max_value=2),
        perturb_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_answer_invariant_under_budgeted_perturbation(
        self, pts_a, pts_b, k, perturb_seed
    ):
        positions_a = {i: p for i, p in enumerate(pts_a)}
        positions_b = {100 + i: p for i, p in enumerate(pts_b)}
        qid = 0  # the query is the first A object
        lease = _bi_lease(positions_a, positions_b, qid, k)
        if lease is None:
            return
        rng = random.Random(perturb_seed)
        moved_a = _perturb(positions_a, lease.object_budget, rng, exclude=(qid,))
        moved_b = _perturb(positions_b, lease.object_budget, rng)
        qnew = _perturbed_query(lease, rng)
        moved_a[qid] = qnew
        oracle = brute_bi_rnn(moved_a, moved_b, qnew, query_id=qid, k=k)
        assert oracle == set(lease.answer), (
            f"bi lease certified {sorted(lease.answer)!r} but the oracle "
            f"says {sorted(oracle)!r} after a within-budget perturbation"
        )

    def test_bit_equal_bi_tie_refuses_lease(self):
        """A B object bit-equally torn between the query and another A
        object has zero slack — no lease."""
        positions_a = {0: (0.5, 0.5), 1: (0.0, 0.5)}
        positions_b = {100: (0.25, 0.5)}
        assert _bi_lease(positions_a, positions_b, 0, 1) is None


class TestLeaseShape:
    def test_region_contains_issue_position(self):
        positions = {1: (0.2, 0.5), 2: (0.8, 0.5), 3: (0.5, 0.9)}
        lease = _mono_lease(positions, None, (0.5, 0.5), 1)
        assert lease is not None
        assert lease.contains(lease.qpos)
        assert lease.sources  # contributing bisector memo keys recorded

    def test_region_excludes_points_past_the_slab(self):
        positions = {1: (0.2, 0.5), 2: (0.8, 0.5), 3: (0.5, 0.9)}
        lease = _mono_lease(positions, None, (0.5, 0.5), 1)
        assert lease is not None
        qx, qy = lease.qpos
        far = lease.query_budget * 2.0
        assert not lease.contains((qx + far, qy))
        assert not lease.contains((qx, qy + far))

    def test_region_polygon_has_positive_area(self):
        positions = {1: (0.2, 0.5), 2: (0.8, 0.5), 3: (0.5, 0.9)}
        lease = _mono_lease(positions, None, (0.5, 0.5), 1)
        assert lease is not None
        polygon = lease.region_polygon()
        assert polygon.area() > 0.0
