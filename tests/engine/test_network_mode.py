"""Lockstep conformance of the road-network distance mode.

The network-metric counterpart of ``tests/engine/test_scheduler.py``:
IGERN evaluating under shortest-path distance (the filter-and-refine
core of ``repro.core.network``) must produce bit-identical per-tick
answers with the scheduler on and off, with batching on and off, and —
at every tick of every configuration — match the independent networkx
brute oracle registered in the same simulator.

Network queries report no footprint (their reach along the network has
no cell-box description), so the scheduler must honestly re-evaluate
them every tick; that property is pinned here too.
"""

from __future__ import annotations

import pytest

from repro.engine.simulation import Simulator
from repro.engine.workload import (
    WorkloadSpec,
    build_network,
    build_simulator,
    central_object,
)
from repro.core.mono import MonoIGERN
from repro.metric import STATS, NetworkMetric
from repro.motion.churn import ChurnRandomWalkGenerator
from repro.queries import (
    IGERNBiQuery,
    IGERNMonoQuery,
    NetworkBruteBiQuery,
    NetworkBruteMonoQuery,
    QueryPosition,
)


def _network_spec(kind: str, move_fraction: float = 1.0) -> WorkloadSpec:
    """A small road workload: objects move along a 36-node street grid
    (kept small because the oracle is quadratic in network distances)."""
    return WorkloadSpec(
        n_objects=80,
        grid_size=16,
        seed=11,
        network="grid_city",
        network_nodes=36,
        move_fraction=move_fraction,
        bichromatic=(kind == "bi"),
    )


def _register(sim: Simulator, network, kind: str, k: int) -> None:
    """The network-metric IGERN query plus the brute oracle, on the same
    (moving) query object — same seed in both simulators, same ids."""
    if kind == "mono":
        qid = central_object(sim)
        pos = QueryPosition(sim.grid, query_id=qid)
        sim.add_query(
            "q",
            IGERNMonoQuery(sim.grid, pos, k=k, metric=NetworkMetric(network)),
        )
        sim.add_query("oracle", NetworkBruteMonoQuery(sim.grid, pos, network, k=k))
    else:
        qid = central_object(sim, "A")
        pos = QueryPosition(sim.grid, query_id=qid)
        sim.add_query(
            "q",
            IGERNBiQuery(sim.grid, pos, k=k, metric=NetworkMetric(network)),
        )
        sim.add_query("oracle", NetworkBruteBiQuery(sim.grid, pos, network, k=k))


def _assert_network_lockstep(
    sim_on: Simulator, sim_off: Simulator, n_ticks: int
) -> None:
    res_on = sim_on.run(n_ticks)
    res_off = sim_off.run(n_ticks)
    answers_on = [t.answer for t in res_on["q"].ticks]
    answers_off = [t.answer for t in res_off["q"].ticks]
    assert answers_on == answers_off, "scheduler on/off answers diverged"
    for res, side in ((res_on, "on"), (res_off, "off")):
        igern = [t.answer for t in res["q"].ticks]
        oracle = [t.answer for t in res["oracle"].ticks]
        assert igern == oracle, f"engine differs from brute oracle ({side})"
    # Network queries carry no footprint, so nothing is ever skipped:
    # every answer above was honestly recomputed this tick.
    assert res_on.queries_skipped == 0
    assert res_off.queries_skipped == 0
    assert all(not t.skipped for t in res_on["q"].ticks)


@pytest.mark.parametrize(
    "kind,k",
    [("mono", 1), ("mono", 2), ("mono", 3), ("bi", 1), ("bi", 2), ("bi", 3)],
)
def test_lockstep_matrix(kind: str, k: int):
    """Scheduler on vs off vs brute oracle across mono/bi and k.

    The query object is part of the moving population, so every run is
    also a moving-query run."""
    spec = _network_spec(kind)
    network = build_network(spec)
    sim_on = build_simulator(spec, scheduler=True)
    sim_off = build_simulator(spec, scheduler=False)
    _register(sim_on, network, kind, k)
    _register(sim_off, network, kind, k)
    _assert_network_lockstep(sim_on, sim_off, n_ticks=6)


@pytest.mark.parametrize("kind", ["mono", "bi"])
def test_lockstep_partial_movement(kind: str):
    """Only half the population moves: the tick deltas are sparse, the
    skip machinery is tempted, and network answers must not go stale."""
    spec = _network_spec(kind, move_fraction=0.5)
    network = build_network(spec)
    sim_on = build_simulator(spec, scheduler=True)
    sim_off = build_simulator(spec, scheduler=False)
    _register(sim_on, network, kind, 2)
    _register(sim_off, network, kind, 2)
    _assert_network_lockstep(sim_on, sim_off, n_ticks=6)


@pytest.mark.parametrize("kind", ["mono", "bi"])
def test_lockstep_under_churn(kind: str):
    """Births and deaths of *off-network* objects: the spur (access
    cost) half of the distance spec, exercised end to end.  The fixed
    query sits mid-edge on the network."""
    categories = {"A": 0.4, "B": 0.6} if kind == "bi" else None
    network = build_network(_network_spec(kind))
    u, v, length = network.sorted_edges()[7]
    qpoint = network.point_on_edge(u, v, 0.5 * length)

    def make_sim(scheduler: bool) -> Simulator:
        gen = ChurnRandomWalkGenerator(
            70,
            seed=5,
            step_sigma=0.012,
            birth_rate=0.05,
            death_rate=0.05,
            categories=categories,
        )
        sim = Simulator(gen, grid_size=16, scheduler=scheduler)
        pos = QueryPosition(sim.grid, fixed=(qpoint.x, qpoint.y))
        if kind == "mono":
            sim.add_query(
                "q", IGERNMonoQuery(sim.grid, pos, metric=NetworkMetric(network))
            )
            sim.add_query("oracle", NetworkBruteMonoQuery(sim.grid, pos, network))
        else:
            sim.add_query(
                "q", IGERNBiQuery(sim.grid, pos, metric=NetworkMetric(network))
            )
            sim.add_query("oracle", NetworkBruteBiQuery(sim.grid, pos, network))
        return sim

    _assert_network_lockstep(make_sim(True), make_sim(False), n_ticks=8)


def test_batched_run_matches_cold_and_shares_maps():
    """batch=True answers equal batch=False answers bit for bit, and the
    shared tick context actually serves Dijkstra maps across the
    co-evaluated queries (the BRkNN-light sharing the counters report)."""
    spec = _network_spec("mono")
    network = build_network(spec)

    def make_sim(batch: bool) -> Simulator:
        sim = build_simulator(spec, scheduler=True, batch=batch)
        qid = central_object(sim)
        sim.add_query(
            "q1",
            IGERNMonoQuery(
                sim.grid,
                QueryPosition(sim.grid, query_id=qid),
                metric=NetworkMetric(network),
            ),
        )
        sim.add_query(
            "q2",
            IGERNMonoQuery(
                sim.grid,
                QueryPosition(sim.grid, fixed=(0.5, 0.5)),
                metric=NetworkMetric(network),
            ),
        )
        return sim

    hits_before = STATS.cache_hits
    res_batch = make_sim(True).run(4)
    assert STATS.cache_hits > hits_before
    res_cold = make_sim(False).run(4)
    for name in ("q1", "q2"):
        batched = [t.answer for t in res_batch[name].ticks]
        cold = [t.answer for t in res_cold[name].ticks]
        assert batched == cold, f"batched answers diverged for {name!r}"


def test_network_queries_report_no_footprint():
    """footprint() is None under a network metric: Euclidean cell boxes
    cannot bound network reach, so the query opts out of skipping and
    the scheduler treats it as always-affected."""
    spec = _network_spec("mono")
    network = build_network(spec)
    sim = build_simulator(spec, scheduler=True)
    qid = central_object(sim)
    query = IGERNMonoQuery(
        sim.grid,
        QueryPosition(sim.grid, query_id=qid),
        metric=NetworkMetric(network),
    )
    sim.add_query("q", query)
    sim.execute_queries()
    assert query.footprint() is None
    assert sim.scheduler.footprint("q") is None
    assert query.monitored_region_cells == 0
    assert query.monitored_area() == 1.0


def test_euclidean_core_refuses_network_metric():
    """The bisector-pruning core is a Euclidean-only theorem; handing it
    a network metric must fail loudly, not prune wrongly."""
    spec = _network_spec("mono")
    network = build_network(spec)
    sim = build_simulator(spec, scheduler=False)
    with pytest.raises(TypeError, match="[Ee]uclidean"):
        MonoIGERN(sim.grid, metric=NetworkMetric(network))


def test_default_metric_is_euclidean_and_unchanged():
    """Omitting ``metric`` keeps the exact pre-seam IGERN behavior —
    same core class, footprints present, scheduler skipping allowed."""
    spec = WorkloadSpec(n_objects=60, grid_size=12, seed=3, network="walk")
    sim = build_simulator(spec, scheduler=True)
    qid = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    sim.add_query("q", query)
    sim.execute_queries()
    assert query.metric.euclidean
    assert query.footprint() is not None
