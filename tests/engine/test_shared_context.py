"""Cache soundness of the per-tick shared-execution context.

The :class:`~repro.grid.context.SharedTickContext` memoizes grid-level
primitives (witness probes, nearest searches, cell snapshots, half-plane
cell classification) across the queries of one tick.  Its contract is
absolute: a memoized read returns exactly what a cold computation on the
current grid state would, no matter how probes, repeats and grid
mutations interleave.  The Hypothesis suite here drives random
interleavings against cold recomputation; the deterministic tests pin
the stale-cache regression (a within-cell move — same cell key, changed
coordinates — must invalidate the context) at both the context level and
end-to-end through a batched simulator.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.simulation import Simulator
from repro.geometry.bisector import bisector_halfplane
from repro.grid.alive import AliveCellGrid
from repro.grid.context import SharedTickContext
from repro.grid.index import GridIndex
from repro.grid.search import GridSearch
from repro.motion.churn import TickEvents
from repro.queries import IGERNMonoQuery, QueryPosition, brute_mono_rnn

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
point = st.tuples(coord, coord)


class _Feed:
    """Scripted per-tick event feed (the Simulator generator protocol)."""

    def __init__(self, initial):
        self._initial = list(initial)
        self.pending = TickEvents([], [], [])

    def initial(self):
        return list(self._initial)

    def step_events(self, dt: float = 1.0) -> TickEvents:
        events, self.pending = self.pending, TickEvents([], [], [])
        return events


class TestMemoEqualsCold:
    """Random probes, repeats and mutations: memoized == cold, always."""

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_probes_match_cold_recomputation(self, data):
        grid = GridIndex(6)
        n = data.draw(st.integers(min_value=4, max_value=16), label="n_objects")
        for oid in range(n):
            grid.insert(
                oid,
                data.draw(point, label=f"pos{oid}"),
                data.draw(st.sampled_from(["A", "B"]), label=f"cat{oid}"),
            )
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        search = GridSearch(grid)
        cold = GridSearch(grid)

        # A small pool of probe parameter tuples so repeats occur and the
        # memo is genuinely exercised (not just populated).
        ids = sorted(grid.objects())
        pool = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(ids),                      # center object
                    st.floats(min_value=0.0, max_value=1.5),   # threshold
                    st.sets(st.sampled_from(ids), max_size=3), # exclusions
                    st.sampled_from([None, "A", "B"]),         # category
                    st.integers(min_value=1, max_value=3),     # k
                ),
                min_size=2,
                max_size=5,
            ),
            label="probe_pool",
        )
        next_id = n
        for step in range(data.draw(st.integers(8, 24), label="n_steps")):
            op = data.draw(
                st.sampled_from(
                    ["witness", "witness", "nearest", "cells", "mutate"]
                ),
                label=f"op{step}",
            )
            if op == "mutate":
                kind = data.draw(
                    st.sampled_from(["move", "insert", "remove"]),
                    label=f"mutate{step}",
                )
                live = sorted(grid.objects())
                if kind == "insert" or not live:
                    grid.insert(
                        next_id, data.draw(point, label=f"ins{step}"), "A"
                    )
                    next_id += 1
                elif kind == "move":
                    grid.move(
                        data.draw(st.sampled_from(live), label=f"mv{step}"),
                        data.draw(point, label=f"mvpos{step}"),
                    )
                else:
                    grid.remove(
                        data.draw(st.sampled_from(live), label=f"rm{step}")
                    )
                continue
            oid, threshold, exclude, category, k = data.draw(
                st.sampled_from(pool), label=f"params{step}"
            )
            if oid not in grid:
                continue
            center = grid.position(oid)
            sig = frozenset(o for o in exclude if o in grid)
            if op == "witness":
                t2 = threshold * threshold
                got = ctx.witness_count(
                    search, oid, center, t2, sig, category, k
                )
                rows = cold.witnesses_closer_than(
                    center, t2, exclude=sig, category=category, stop_at=k
                )
                assert got == len(rows)
            elif op == "nearest":
                got = ctx.nearest_excluding(search, oid, center, sig, category)
                assert got == cold.nearest(center, exclude=sig, category=category)
            else:
                key = (
                    data.draw(st.integers(0, 5), label=f"cx{step}"),
                    data.draw(st.integers(0, 5), label=f"cy{step}"),
                )
                got = ctx.cell_objects(key, category)
                expected = tuple(
                    (o, grid.position(o))
                    for o in grid.objects_in_cell(key, category)
                )
                assert got == expected

    @given(p=point, q=point, cx=st.integers(0, 5), cy=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_classification_memo_matches_inline(self, p, q, cx, cy):
        if p == q:
            return
        grid = GridIndex(6)
        alive = AliveCellGrid(grid.size, grid.extent)
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        ctx.adopt_alive(alive)
        assert alive.shared_classify == ctx.cell_covered
        hp = bisector_halfplane(p, q)
        cold = alive.covers(hp, (cx, cy))
        assert ctx.cell_covered(alive, hp, (cx, cy)) == cold
        # Second read is a memo hit and still the same classification.
        assert ctx.cell_covered(alive, hp, (cx, cy)) == cold
        assert ctx.hits_by_kind["classify"] == 1


class TestAccounting:
    def test_repeated_probe_hits_the_memo(self):
        grid = GridIndex(4)
        grid.insert(0, (0.10, 0.10), "A")
        grid.insert(1, (0.15, 0.10), "A")
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        search = GridSearch(grid)
        center = grid.position(0)
        sig = frozenset({0})
        first = ctx.witness_count(search, 0, center, 0.01, sig, None, 1)
        second = ctx.witness_count(search, 0, center, 0.01, sig, None, 1)
        assert first == second == 1
        snap = ctx.counters_snapshot()
        assert snap["misses_witness"] == 1
        assert snap["hits_witness"] == 1
        assert 0.0 < ctx.sharing_ratio < 1.0

    def test_signature_is_part_of_the_key(self):
        """Two probes around the same center with different exclusion
        signatures are different questions — neither may reuse the other."""
        grid = GridIndex(4)
        grid.insert(0, (0.10, 0.10), "A")
        grid.insert(1, (0.15, 0.10), "A")
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        search = GridSearch(grid)
        center = grid.position(0)
        with_witness = ctx.witness_count(
            search, 0, center, 0.01, frozenset({0}), None, 1
        )
        without_witness = ctx.witness_count(
            search, 0, center, 0.01, frozenset({0, 1}), None, 1
        )
        assert with_witness == 1
        assert without_witness == 0
        assert ctx.hits == 0  # distinct keys: both probes ran cold


class TestStaleCacheRegression:
    """A move that stays inside its cell still changes geometry: the
    context must be rebuilt, never served from the pre-move memo."""

    def test_within_cell_move_invalidates_context(self):
        grid = GridIndex(4)  # cells are 0.25 wide
        grid.insert(0, (0.10, 0.10), "A")
        grid.insert(1, (0.12, 0.10), "A")
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        search = GridSearch(grid)
        center = grid.position(0)
        sig = frozenset({0})
        t2 = 0.05 * 0.05
        assert ctx.witness_count(search, 0, center, t2, sig, None, 1) == 1
        invalidations = ctx.invalidations
        cell_before = grid.cell_of(1)
        grid.move(1, (0.20, 0.10))  # same cell, different coordinates
        assert grid.cell_of(1) == cell_before
        assert ctx.witness_count(search, 0, center, t2, sig, None, 1) == 0
        assert ctx.invalidations > invalidations

    def test_insert_remove_pair_invalidates_context(self):
        """Found by the Hypothesis suite: an insert followed by a remove
        restores the population count, and neither bumps ``updates`` or
        ``cell_changes`` — a version stamp built on those alone would
        serve the pre-churn nearest answer for an object that no longer
        exists.  The monotonic ``mutations`` counter must catch it."""
        grid = GridIndex(4)
        grid.insert(0, (0.10, 0.10), "A")
        grid.insert(1, (0.15, 0.10), "B")
        ctx = SharedTickContext(grid)
        ctx.begin_tick()
        search = GridSearch(grid)
        center = grid.position(0)
        sig = frozenset({0})
        assert ctx.nearest_excluding(search, 0, center, sig, None)[0] == 1
        grid.insert(2, (0.16, 0.10), "B")
        grid.remove(1)  # population is back to 2; updates/cell_changes untouched
        got = ctx.nearest_excluding(search, 0, center, sig, None)
        assert got[0] == 2
        assert got == search.nearest(center, exclude=sig, category=None)

    def test_within_cell_move_reflected_in_batched_answer(self):
        """End-to-end: a batched simulator whose only event is a
        within-cell jitter must re-derive the answer from the post-move
        geometry (and the shared context must report the rebuild)."""
        initial = [(0, (0.52, 0.50), 0), (1, (0.56, 0.50), 0)]
        feed = _Feed(initial)
        sim = Simulator(feed, grid_size=4, scheduler=True, batch=True)
        qpos = (0.50, 0.50)
        sim.add_query(
            "mono", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=qpos))
        )
        sim.execute_queries()
        assert set(sim.query("mono").answer) == brute_mono_rnn(
            sim.grid.positions_snapshot(), qpos
        )
        invalidations = sim.batch.context.invalidations
        # Jitter object 0 within its cell (x in [0.5, 0.75)): object 1's
        # NN flips from 0 to the query, so the true answer changes while
        # cell membership doesn't.
        cell_before = sim.grid.cell_of(0)
        feed.pending = TickEvents(moves=[(0, (0.70, 0.50))], inserts=[], removes=[])
        sim.step()
        assert sim.grid.cell_of(0) == cell_before
        expected = brute_mono_rnn(sim.grid.positions_snapshot(), qpos)
        assert set(sim.query("mono").answer) == expected
        assert 1 in expected  # the answer genuinely changed with the move
        assert sim.batch.context.invalidations > invalidations
