"""Simulator query-lifecycle tests (pause gaps, mid-run removal)."""

import pytest

from repro.engine.simulation import Simulator
from repro.motion.uniform import RandomWalkGenerator
from repro.queries import BruteForceMonoQuery, IGERNMonoQuery, QueryPosition


def make_sim(n=120, seed=2):
    return Simulator(RandomWalkGenerator(n, seed=seed, step_sigma=0.04), grid_size=16)


class TestPausedLogs:
    def test_paused_query_produces_log_gaps(self):
        sim = make_sim()
        sim.add_query(
            "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        sim.run(2)
        sim.pause_query("q")
        paused_result = sim.run(3)
        assert "q" in paused_result.logs
        assert paused_result["q"].ticks == []
        sim.resume_query("q")
        resumed = sim.run(2)
        assert len(resumed["q"].ticks) == 3  # re-execute + 2 ticks

    def test_resumed_answer_exact(self):
        sim = make_sim(seed=5)
        sim.add_query(
            "igern", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        sim.add_query(
            "brute",
            BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5))),
        )
        sim.run(2)
        sim.pause_query("igern")
        sim.run(8)
        sim.resume_query("igern")
        result = sim.run(1)
        for metrics in result["igern"].ticks:
            expected = next(
                m.answer for m in result["brute"].ticks if m.tick == metrics.tick
            )
            assert metrics.answer == expected

    def test_pause_unknown_query(self):
        sim = make_sim()
        with pytest.raises(KeyError):
            sim.pause_query("ghost")
        with pytest.raises(KeyError):
            sim.resume_query("ghost")

    def test_is_paused(self):
        sim = make_sim()
        sim.add_query(
            "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        assert not sim.is_paused("q")
        sim.pause_query("q")
        assert sim.is_paused("q")


class TestRemoval:
    def test_remove_query_returns_executor(self):
        sim = make_sim()
        query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        sim.add_query("q", query)
        sim.run(1)
        returned = sim.remove_query("q")
        assert returned is query
        assert "q" not in sim.query_names()

    def test_removed_query_not_executed(self):
        sim = make_sim()
        sim.add_query(
            "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        sim.run(1)
        sim.remove_query("q")
        result = sim.run(2)
        assert "q" not in result.names()

    def test_remove_missing_raises(self):
        sim = make_sim()
        with pytest.raises(KeyError):
            sim.remove_query("ghost")

    def test_name_reusable_after_removal(self):
        sim = make_sim()
        sim.add_query(
            "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        sim.remove_query("q")
        sim.add_query(
            "q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.2, 0.2)))
        )
        result = sim.run(1)
        assert len(result["q"].ticks) == 2
