"""Unit tests for the workload builders."""

import pytest

from repro.engine.workload import (
    WorkloadSpec,
    build_generator,
    build_simulator,
    central_object,
)


class TestWorkloadSpec:
    def test_mono_has_no_categories(self):
        assert WorkloadSpec(bichromatic=False).categories() is None

    def test_bichromatic_categories(self):
        cats = WorkloadSpec(bichromatic=True, a_fraction=0.25).categories()
        assert cats == {"A": 0.25, "B": 0.75}


class TestBuildGenerator:
    def test_unknown_network_raises(self):
        with pytest.raises(ValueError):
            build_generator(WorkloadSpec(network="teleporter"))

    @pytest.mark.parametrize(
        "kind", ["grid_city", "delaunay", "radial", "walk", "jump", "clusters"]
    )
    def test_all_kinds_build(self, kind):
        gen = build_generator(WorkloadSpec(n_objects=50, network=kind, seed=1))
        assert len(gen.initial()) == 50
        assert len(gen.step()) <= 50

    def test_bichromatic_assignment(self):
        gen = build_generator(
            WorkloadSpec(n_objects=200, seed=2, bichromatic=True)
        )
        cats = {c for _, _, c in gen.initial()}
        assert cats == {"A", "B"}


class TestBuildSimulator:
    def test_simulator_populated(self):
        sim = build_simulator(WorkloadSpec(n_objects=120, grid_size=16, seed=3))
        assert len(sim.grid) == 120
        assert sim.grid.size == 16

    def test_central_object_is_central(self):
        sim = build_simulator(WorkloadSpec(n_objects=200, grid_size=16, seed=4))
        qid = central_object(sim)
        center = sim.grid.extent.center
        d_q = sim.grid.position(qid).distance_to(center)
        for oid in sim.grid.objects():
            assert d_q <= sim.grid.position(oid).distance_to(center) + 1e-12

    def test_central_object_by_category(self):
        sim = build_simulator(
            WorkloadSpec(n_objects=200, grid_size=16, seed=5, bichromatic=True)
        )
        qid = central_object(sim, "A")
        assert sim.grid.category(qid) == "A"

    def test_central_object_missing_category(self):
        sim = build_simulator(WorkloadSpec(n_objects=10, grid_size=8, seed=6))
        with pytest.raises(ValueError):
            central_object(sim, "Z")
