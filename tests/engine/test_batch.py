"""Unit tests for the shared-execution batch executor and its engine hookup."""

from repro.engine.batch import BatchExecutor
from repro.engine.simulation import Simulator
from repro.engine.workload import WorkloadSpec, build_simulator, set_default_batch
from repro.grid.index import GridIndex
from repro.motion.uniform import RandomWalkGenerator
from repro.queries import IGERNMonoQuery, QueryPosition
from repro.queries.base import QueryFootprint


def _fp(cells=(), objects=()):
    return QueryFootprint(cells=frozenset(cells), objects=frozenset(objects))


class TestGrouping:
    def test_overlapping_footprints_grouped_contiguously(self):
        ex = BatchExecutor(GridIndex(8))
        footprints = {
            "a": _fp(cells=[(0, 0), (0, 1)]),
            "b": _fp(cells=[(5, 5)]),
            "c": _fp(cells=[(0, 1), (2, 2)]),
        }
        order = ex.order(["a", "b", "c"], footprints)
        # a and c share cell (0, 1): one group, listed back to back, with
        # groups and members in first-seen input order.
        assert order == ["a", "c", "b"]
        assert ex.groups == 2

    def test_shared_monitored_object_joins_groups(self):
        ex = BatchExecutor(GridIndex(8))
        footprints = {
            "a": _fp(cells=[(0, 0)], objects=[7]),
            "b": _fp(cells=[(5, 5)], objects=[7]),
        }
        assert ex.order(["a", "b"], footprints) == ["a", "b"]
        assert ex.groups == 1

    def test_footprintless_queries_stay_singletons(self):
        ex = BatchExecutor(GridIndex(8))
        footprints = {"a": None, "b": None, "c": _fp(cells=[(1, 1)])}
        assert ex.order(["a", "b", "c"], footprints) == ["a", "b", "c"]
        assert ex.groups == 3

    def test_transitive_overlap_is_one_group(self):
        ex = BatchExecutor(GridIndex(8))
        footprints = {
            "a": _fp(cells=[(0, 0)]),
            "b": _fp(cells=[(0, 0), (1, 1)]),
            "c": _fp(cells=[(1, 1)]),
        }
        assert ex.order(["a", "b", "c"], footprints) == ["a", "b", "c"]
        assert ex.groups == 1

    def test_order_is_a_permutation(self):
        ex = BatchExecutor(GridIndex(8))
        names = [f"q{i}" for i in range(9)]
        footprints = {name: _fp(cells=[(i % 3, 0)]) for i, name in enumerate(names)}
        order = ex.order(names, footprints)
        assert sorted(order) == sorted(names)
        assert ex.groups == 3


class TestTickAccounting:
    def test_finish_tick_drains_deltas(self):
        grid = GridIndex(8)
        grid.insert(0, (0.5, 0.5), "A")
        ex = BatchExecutor(grid)
        ex.begin_tick()
        ex.context.cell_objects((4, 4), None)
        ex.context.cell_objects((4, 4), None)
        assert ex.finish_tick() == (1, 1)
        assert ex.sharing_ratio == 0.5
        ex.begin_tick()
        assert ex.finish_tick() == (0, 0)
        assert ex.sharing_ratio == 0.0


class TestSimulatorFlag:
    def _queries(self, sim, points):
        for i, pt in enumerate(points):
            sim.add_query(
                f"q{i}",
                IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=pt)),
            )

    def test_batch_off_has_no_executor(self):
        sim = Simulator(RandomWalkGenerator(20, seed=1), grid_size=8, batch=False)
        assert sim.batch is None

    def test_batch_requires_scheduler(self):
        sim = Simulator(
            RandomWalkGenerator(20, seed=1), grid_size=8, scheduler=False, batch=True
        )
        assert sim.batch is None

    def test_batched_run_matches_unbatched_and_shares(self):
        points = [(0.48, 0.5), (0.5, 0.5), (0.52, 0.5), (0.5, 0.52)]

        def run(batch):
            sim = Simulator(
                RandomWalkGenerator(60, seed=7, step_sigma=0.03),
                grid_size=16,
                batch=batch,
            )
            self._queries(sim, points)
            result = sim.run(5)
            answers = {
                name: [tick.answer for tick in result[name].ticks]
                for name in result.names()
            }
            return answers, sim

        batched, sim_batched = run(True)
        unbatched, sim_plain = run(False)
        assert batched == unbatched
        assert sim_batched.batch_probe_hits > 0
        assert sim_plain.batch_probe_hits == 0

    def test_build_simulator_respects_default(self):
        spec = WorkloadSpec(n_objects=10, seed=1, grid_size=8)
        try:
            set_default_batch(False)
            assert build_simulator(spec).batch is None
        finally:
            set_default_batch(True)
        assert build_simulator(spec).batch is not None
        assert build_simulator(spec, batch=False).batch is None
