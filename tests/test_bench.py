"""Tests for the perf-regression harness (``igern bench``): tolerance
arithmetic, result comparison, and the check driver — all pure-data
paths, no benchmark is executed here."""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    OK,
    REGRESSION,
    SKIPPED,
    MetricCheck,
    check_benchmarks,
    compare,
    format_rows,
    has_regression,
    resolve,
)

TICK = BENCHMARKS["tick_throughput"]
BATCH = BENCHMARKS["batch_throughput"]


def tick_result(
    speedup=4.0,
    identical=True,
    fallback_rate=0.0,
    skipped=900,
    evaluated=100,
    ticks_per_sec=50.0,
):
    return {
        "speedup": speedup,
        "answers_identical": identical,
        "predicates": {"fallback_rate": fallback_rate},
        "scheduler_on": {
            "queries_evaluated": evaluated,
            "ticks_skipped": skipped,
            "ticks_per_sec": ticks_per_sec,
        },
    }


def batch_result(
    speedup=1.6, identical=True, sharing_ratio=0.5, probe_hits=50000
):
    return {
        "speedup": speedup,
        "answers_identical": identical,
        "batched": {
            "sharing_ratio": sharing_ratio,
            "probe_hits": probe_hits,
            "ticks_per_sec": 40.0,
        },
    }


class TestMetricCheck:
    def test_lower_relative_band(self):
        check = MetricCheck("speedup", "lower", "rel", 0.40)
        assert check.bound(5.0) == pytest.approx(3.0)
        assert check.passes(5.0, 3.0)
        assert check.passes(5.0, 9.0)
        assert not check.passes(5.0, 2.99)

    def test_upper_absolute_band(self):
        check = MetricCheck("fallback_rate", "upper", "abs", 0.01)
        assert check.bound(0.02) == pytest.approx(0.03)
        assert check.passes(0.02, 0.03)
        assert not check.passes(0.02, 0.031)

    def test_exact_direction_ignores_tolerance(self):
        check = MetricCheck("answers_identical", "exact", tolerance=0.5)
        assert check.bound(1.0) == 1.0
        assert check.passes(1.0, 1.0)
        assert not check.passes(1.0, 0.0)

    def test_upper_relative_band(self):
        check = MetricCheck("queries_evaluated", "upper", "rel", 0.05)
        assert check.bound(100.0) == pytest.approx(105.0)
        assert not check.passes(100.0, 106.0)


class TestResolve:
    def test_empty_selection_means_everything(self):
        assert [b.name for b in resolve([])] == list(BENCHMARKS)

    def test_by_name(self):
        assert resolve(["batch_throughput"]) == [BATCH]

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="tick_throughput"):
            resolve(["nope"])


class TestCompare:
    def test_identical_results_pass_every_check(self):
        rows = compare(TICK, tick_result(), tick_result())
        assert [r["status"] for r in rows] == [OK] * len(TICK.checks)
        assert not has_regression(rows)

    def test_degraded_speedup_is_a_regression(self):
        rows = compare(TICK, tick_result(speedup=5.0), tick_result(speedup=2.0))
        [row] = [r for r in rows if r["metric"] == "speedup"]
        assert row["status"] == REGRESSION
        assert "violates >= 3" in row["detail"]
        assert has_regression(rows)

    def test_improvement_is_not_a_regression(self):
        rows = compare(
            TICK, tick_result(speedup=4.0), tick_result(speedup=8.0)
        )
        assert not has_regression(rows)

    def test_broken_invariant_fails_exactly(self):
        rows = compare(TICK, tick_result(), tick_result(identical=False))
        [row] = [r for r in rows if r["metric"] == "answers_identical"]
        assert row["status"] == REGRESSION

    def test_quick_skips_count_metrics_only(self):
        degraded = tick_result(evaluated=110, skipped=890)
        rows = compare(TICK, tick_result(), degraded, quick=True)
        by_metric = {r["metric"]: r["status"] for r in rows}
        assert by_metric["queries_evaluated"] == SKIPPED
        assert by_metric["speedup"] == OK
        assert not has_regression(rows)

    def test_full_run_gates_count_metrics(self):
        degraded = tick_result(evaluated=110, skipped=890)
        rows = compare(TICK, tick_result(), degraded)
        by_metric = {r["metric"]: r["status"] for r in rows}
        assert by_metric["queries_evaluated"] == REGRESSION

    def test_missing_metric_is_a_regression(self):
        from repro.bench import Benchmark

        partial = Benchmark(
            name="partial",
            test_path="-",
            result_file="-",
            quick_env="-",
            out_env="-",
            metrics=lambda result: dict(result),
            checks=(MetricCheck("gone", "lower", "rel", 0.1),),
        )
        rows = compare(partial, {"gone": 1.0}, {})
        [row] = rows
        assert row["status"] == REGRESSION
        assert "missing from result document" in row["detail"]

    def test_dropped_sharing_ratio_regresses(self):
        rows = compare(
            BATCH,
            batch_result(sharing_ratio=0.50),
            batch_result(sharing_ratio=0.35),
        )
        [row] = [r for r in rows if r["metric"] == "sharing_ratio"]
        assert row["status"] == REGRESSION
        assert row["bound"] == pytest.approx(0.40)


class TestCheckBenchmarks:
    def _write(self, directory, bench, result):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / bench.result_file).write_text(json.dumps(result))

    def test_passes_on_equal_dirs(self, tmp_path):
        self._write(tmp_path / "base", TICK, tick_result())
        self._write(tmp_path / "cur", TICK, tick_result())
        rows = check_benchmarks([TICK], tmp_path / "base", tmp_path / "cur")
        assert not has_regression(rows)

    def test_missing_result_file_reports_regression(self, tmp_path):
        self._write(tmp_path / "base", TICK, tick_result())
        (tmp_path / "cur").mkdir()
        rows = check_benchmarks([TICK], tmp_path / "base", tmp_path / "cur")
        assert has_regression(rows)
        assert any("missing result file" in r["detail"] for r in rows)

    def test_missing_baseline_file_reports_regression(self, tmp_path):
        (tmp_path / "base").mkdir()
        self._write(tmp_path / "cur", TICK, tick_result())
        rows = check_benchmarks([TICK], tmp_path / "base", tmp_path / "cur")
        assert any("missing baseline file" in r["detail"] for r in rows)

    def test_multiple_benchmarks_concatenate(self, tmp_path):
        for d in ("base", "cur"):
            self._write(tmp_path / d, TICK, tick_result())
            self._write(tmp_path / d, BATCH, batch_result())
        rows = check_benchmarks(
            [TICK, BATCH], tmp_path / "base", tmp_path / "cur"
        )
        assert {r["benchmark"] for r in rows} == {
            "tick_throughput",
            "batch_throughput",
        }
        assert not has_regression(rows)


class TestFormatRows:
    def test_table_shows_status_and_details_on_regression(self):
        rows = compare(TICK, tick_result(speedup=5.0), tick_result(speedup=2.0))
        text = format_rows(rows)
        assert "benchmark" in text and "status" in text
        assert "regression" in text
        assert "violates" in text

    def test_ok_rows_carry_no_detail_lines(self):
        rows = compare(TICK, tick_result(), tick_result())
        text = format_rows(rows)
        assert "violates" not in text
        assert text.count("ok") >= len(TICK.checks)

    def test_committed_baselines_pass_against_themselves(self):
        from repro.bench import REPO_ROOT, load_result

        for bench in BENCHMARKS.values():
            path = REPO_ROOT / bench.result_file
            result = load_result(path)
            assert not has_regression(compare(bench, result, result))
