"""Batched updates: GridIndex.apply_updates, TickDelta, category sets."""

from __future__ import annotations

import random

import pytest

from repro.geometry.point import Point
from repro.grid.delta import TickDelta
from repro.grid.index import GridIndex


class TestTickDelta:
    def test_empty(self):
        d = TickDelta()
        assert d.is_empty()
        assert d.changed_ids() == set()

    def test_record_move_within_cell(self):
        d = TickDelta()
        d.record_move("a", (1, 1), (1, 1))
        assert d.moved == {"a"}
        assert d.touched_cells == {(1, 1)}
        assert d.dirty_cells == set()
        assert d.cell_enters == {} and d.cell_leaves == {}
        assert not d.is_empty()

    def test_record_move_across_cells(self):
        d = TickDelta()
        d.record_move("a", (1, 1), (2, 1))
        assert d.touched_cells == {(1, 1), (2, 1)}
        assert d.dirty_cells == {(1, 1), (2, 1)}
        assert d.cell_leaves == {(1, 1): {"a"}}
        assert d.cell_enters == {(2, 1): {"a"}}

    def test_churn_records(self):
        d = TickDelta()
        d.record_insert("new", (0, 0))
        d.record_remove("old", (3, 3))
        assert d.inserted == {"new"} and d.removed == {"old"}
        assert d.dirty_cells == {(0, 0), (3, 3)}
        assert d.touched_cells == {(0, 0), (3, 3)}
        assert d.changed_ids() == {"new", "old"}


class TestApplyUpdates:
    def test_matches_individual_moves(self):
        """Same final state and counters as the per-move loop."""
        rng = random.Random(42)
        pts = [(rng.random(), rng.random()) for _ in range(200)]
        batched = GridIndex(16)
        serial = GridIndex(16)
        for i, p in enumerate(pts):
            batched.insert(i, p, category=i % 2)
            serial.insert(i, p, category=i % 2)
        moves = [(i, (rng.random(), rng.random())) for i in range(0, 200, 3)]
        delta = batched.apply_updates(moves)
        crossings = sum(1 for oid, p in moves if serial.move(oid, p))
        assert batched.updates == serial.updates
        assert batched.cell_changes == serial.cell_changes
        assert len(delta.dirty_cells) <= 2 * crossings
        for i in range(200):
            assert batched.position(i) == serial.position(i)
            assert batched.cell_of(i) == serial.cell_of(i)

    def test_delta_contents(self):
        grid = GridIndex(4)
        grid.insert("stay", (0.1, 0.1))
        grid.insert("wiggle", (0.3, 0.3))
        grid.insert("cross", (0.6, 0.6))
        delta = grid.apply_updates(
            [("wiggle", (0.31, 0.31)), ("cross", (0.9, 0.9))]
        )
        assert delta.moved == {"wiggle", "cross"}
        assert grid.cell_key((0.3, 0.3)) in delta.touched_cells
        assert delta.dirty_cells == {
            grid.cell_key((0.6, 0.6)),
            grid.cell_key((0.9, 0.9)),
        }
        assert delta.cell_enters == {grid.cell_key((0.9, 0.9)): {"cross"}}
        assert delta.cell_leaves == {grid.cell_key((0.6, 0.6)): {"cross"}}

    def test_restated_position_counts_update_but_not_movement(self):
        grid = GridIndex(4)
        grid.insert("a", (0.5, 0.5))
        delta = grid.apply_updates([("a", (0.5, 0.5))])
        assert grid.updates == 1
        assert delta.is_empty()

    def test_churn_order_removes_then_inserts_then_moves(self):
        """An id freed by a remove can be reused by an insert same tick."""
        grid = GridIndex(4)
        grid.insert("x", (0.1, 0.1))
        grid.insert("y", (0.9, 0.9))
        delta = grid.apply_updates(
            [("y", (0.85, 0.85))],
            inserts=[("x", Point(0.6, 0.6), "B")],
            removes=["x"],
        )
        assert grid.category("x") == "B"
        assert delta.removed == {"x"} and delta.inserted == {"x"}
        assert grid.cell_key((0.6, 0.6)) in delta.dirty_cells

    def test_move_of_unknown_object_raises(self):
        grid = GridIndex(4)
        with pytest.raises(KeyError):
            grid.apply_updates([("ghost", (0.5, 0.5))])


class TestCategorySets:
    def test_objects_and_count_by_category(self):
        grid = GridIndex(8)
        for i in range(10):
            grid.insert(i, (i / 10.0 + 0.05, 0.5), category="A" if i < 4 else "B")
        assert grid.count("A") == 4
        assert grid.count("B") == 6
        assert grid.count() == 10
        assert set(grid.objects("A")) == set(range(4))
        assert set(grid.objects("B")) == set(range(4, 10))

    def test_category_sets_survive_remove_and_batch(self):
        grid = GridIndex(8)
        grid.insert("a1", (0.1, 0.1), "A")
        grid.insert("a2", (0.2, 0.2), "A")
        grid.insert("b1", (0.3, 0.3), "B")
        grid.remove("a1")
        assert set(grid.objects("A")) == {"a2"}
        grid.apply_updates(
            [("a2", (0.8, 0.8))],
            inserts=[("b2", Point(0.4, 0.4), "B")],
            removes=["b1"],
        )
        assert set(grid.objects("B")) == {"b2"}
        assert grid.count("A") == 1
        assert grid.count("missing") == 0
        assert list(grid.objects("missing")) == []

    def test_positions_snapshot_by_category(self):
        grid = GridIndex(8)
        grid.insert("a", (0.1, 0.2), "A")
        grid.insert("b", (0.3, 0.4), "B")
        assert grid.positions_snapshot("A") == {"a": (0.1, 0.2)}
        assert set(grid.positions_snapshot()) == {"a", "b"}
