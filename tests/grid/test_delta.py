"""Batched updates: GridIndex.apply_updates, TickDelta, category sets."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.grid.delta import TickDelta
from repro.grid.index import GridIndex


class TestTickDelta:
    def test_empty(self):
        d = TickDelta()
        assert d.is_empty()
        assert d.changed_ids() == set()

    def test_record_move_within_cell(self):
        d = TickDelta()
        d.record_move("a", (1, 1), (1, 1))
        assert d.moved == {"a"}
        assert d.touched_cells == {(1, 1)}
        assert d.dirty_cells == set()
        assert d.cell_enters == {} and d.cell_leaves == {}
        assert not d.is_empty()

    def test_record_move_across_cells(self):
        d = TickDelta()
        d.record_move("a", (1, 1), (2, 1))
        assert d.touched_cells == {(1, 1), (2, 1)}
        assert d.dirty_cells == {(1, 1), (2, 1)}
        assert d.cell_leaves == {(1, 1): {"a"}}
        assert d.cell_enters == {(2, 1): {"a"}}

    def test_churn_records(self):
        d = TickDelta()
        d.record_insert("new", (0, 0))
        d.record_remove("old", (3, 3))
        assert d.inserted == {"new"} and d.removed == {"old"}
        assert d.dirty_cells == {(0, 0), (3, 3)}
        assert d.touched_cells == {(0, 0), (3, 3)}
        assert d.changed_ids() == {"new", "old"}


class TestApplyUpdates:
    def test_matches_individual_moves(self):
        """Same final state and counters as the per-move loop."""
        rng = random.Random(42)
        pts = [(rng.random(), rng.random()) for _ in range(200)]
        batched = GridIndex(16)
        serial = GridIndex(16)
        for i, p in enumerate(pts):
            batched.insert(i, p, category=i % 2)
            serial.insert(i, p, category=i % 2)
        moves = [(i, (rng.random(), rng.random())) for i in range(0, 200, 3)]
        delta = batched.apply_updates(moves)
        crossings = sum(1 for oid, p in moves if serial.move(oid, p))
        assert batched.updates == serial.updates
        assert batched.cell_changes == serial.cell_changes
        assert len(delta.dirty_cells) <= 2 * crossings
        for i in range(200):
            assert batched.position(i) == serial.position(i)
            assert batched.cell_of(i) == serial.cell_of(i)

    def test_delta_contents(self):
        grid = GridIndex(4)
        grid.insert("stay", (0.1, 0.1))
        grid.insert("wiggle", (0.3, 0.3))
        grid.insert("cross", (0.6, 0.6))
        delta = grid.apply_updates(
            [("wiggle", (0.31, 0.31)), ("cross", (0.9, 0.9))]
        )
        assert delta.moved == {"wiggle", "cross"}
        assert grid.cell_key((0.3, 0.3)) in delta.touched_cells
        assert delta.dirty_cells == {
            grid.cell_key((0.6, 0.6)),
            grid.cell_key((0.9, 0.9)),
        }
        assert delta.cell_enters == {grid.cell_key((0.9, 0.9)): {"cross"}}
        assert delta.cell_leaves == {grid.cell_key((0.6, 0.6)): {"cross"}}

    def test_restated_position_counts_update_but_not_movement(self):
        grid = GridIndex(4)
        grid.insert("a", (0.5, 0.5))
        delta = grid.apply_updates([("a", (0.5, 0.5))])
        assert grid.updates == 1
        assert delta.is_empty()

    def test_churn_order_removes_then_inserts_then_moves(self):
        """An id freed by a remove can be reused by an insert same tick."""
        grid = GridIndex(4)
        grid.insert("x", (0.1, 0.1))
        grid.insert("y", (0.9, 0.9))
        delta = grid.apply_updates(
            [("y", (0.85, 0.85))],
            inserts=[("x", Point(0.6, 0.6), "B")],
            removes=["x"],
        )
        assert grid.category("x") == "B"
        assert delta.removed == {"x"} and delta.inserted == {"x"}
        assert grid.cell_key((0.6, 0.6)) in delta.dirty_cells

    def test_move_of_unknown_object_raises(self):
        grid = GridIndex(4)
        with pytest.raises(KeyError):
            grid.apply_updates([("ghost", (0.5, 0.5))])


_coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
_pos = st.tuples(_coord, _coord)


@st.composite
def _batch_ticks(draw):
    """An initial population plus one tick of removes/inserts/moves.

    Move targets are surviving initial ids only and insert ids are fresh,
    so every enter/leave is attributable to exactly one batched change
    (``apply_updates`` itself also supports reuse and insert-then-move;
    those orderings are pinned by the example-based tests above).
    """
    size = draw(st.sampled_from([1, 2, 4, 8]))
    n = draw(st.integers(min_value=0, max_value=25))
    initial = [
        (i, draw(_pos), draw(st.sampled_from(["A", "B"]))) for i in range(n)
    ]
    removes = draw(st.lists(st.sampled_from(range(n)), unique=True) if n else st.just([]))
    survivors = [i for i in range(n) if i not in set(removes)]
    move_ids = draw(
        st.lists(st.sampled_from(survivors), unique=True)
        if survivors
        else st.just([])
    )
    moves = [(i, draw(_pos)) for i in move_ids]
    n_inserts = draw(st.integers(min_value=0, max_value=5))
    inserts = [
        (n + j, Point(*draw(_pos)), draw(st.sampled_from(["A", "B"])))
        for j in range(n_inserts)
    ]
    return size, initial, moves, inserts, removes


def _cell_contents(grid):
    out = {}
    for oid in grid.objects():
        out.setdefault(grid.cell_of(oid), set()).add(oid)
    return out


class TestApplyUpdatesProperties:
    @given(_batch_ticks())
    def test_equivalent_to_serial_operations(self, tick):
        """apply_updates == remove-by-one, insert-by-one, move-by-one."""
        size, initial, moves, inserts, removes = tick
        batched = GridIndex(size)
        serial = GridIndex(size)
        for oid, pos, cat in initial:
            batched.insert(oid, pos, category=cat)
            serial.insert(oid, pos, category=cat)
        batched.apply_updates(moves, inserts=inserts, removes=removes)
        for oid in removes:
            serial.remove(oid)
        for oid, pos, cat in inserts:
            serial.insert(oid, pos, category=cat)
        for oid, pos in moves:
            serial.move(oid, pos)
        assert batched.positions_snapshot() == serial.positions_snapshot()
        for oid in serial.objects():
            assert batched.cell_of(oid) == serial.cell_of(oid)
            assert batched.category(oid) == serial.category(oid)
        for cat in ("A", "B"):
            assert set(batched.objects(cat)) == set(serial.objects(cat))

    @given(_batch_ticks())
    def test_delta_enters_and_leaves_match_cell_contents(self, tick):
        """Per cell, enter/leave sets are exactly the membership diff."""
        size, initial, moves, inserts, removes = tick
        grid = GridIndex(size)
        for oid, pos, cat in initial:
            grid.insert(oid, pos, category=cat)
        before = _cell_contents(grid)
        delta = grid.apply_updates(moves, inserts=inserts, removes=removes)
        after = _cell_contents(grid)
        for key in set(before) | set(after):
            gained = after.get(key, set()) - before.get(key, set())
            lost = before.get(key, set()) - after.get(key, set())
            assert delta.cell_enters.get(key, set()) == gained, key
            assert delta.cell_leaves.get(key, set()) == lost, key
        assert set(delta.cell_enters) | set(delta.cell_leaves) == delta.dirty_cells
        assert delta.dirty_cells <= delta.touched_cells
        assert delta.inserted == {oid for oid, _, _ in inserts}
        assert delta.removed == set(removes)
        initial_pos = {oid: pos for oid, pos, _ in initial}
        moved_truly = {oid for oid, pos in moves if pos != initial_pos[oid]}
        assert delta.moved == moved_truly


class TestCategorySets:
    def test_objects_and_count_by_category(self):
        grid = GridIndex(8)
        for i in range(10):
            grid.insert(i, (i / 10.0 + 0.05, 0.5), category="A" if i < 4 else "B")
        assert grid.count("A") == 4
        assert grid.count("B") == 6
        assert grid.count() == 10
        assert set(grid.objects("A")) == set(range(4))
        assert set(grid.objects("B")) == set(range(4, 10))

    def test_category_sets_survive_remove_and_batch(self):
        grid = GridIndex(8)
        grid.insert("a1", (0.1, 0.1), "A")
        grid.insert("a2", (0.2, 0.2), "A")
        grid.insert("b1", (0.3, 0.3), "B")
        grid.remove("a1")
        assert set(grid.objects("A")) == {"a2"}
        grid.apply_updates(
            [("a2", (0.8, 0.8))],
            inserts=[("b2", Point(0.4, 0.4), "B")],
            removes=["b1"],
        )
        assert set(grid.objects("B")) == {"b2"}
        assert grid.count("A") == 1
        assert grid.count("missing") == 0
        assert list(grid.objects("missing")) == []

    def test_positions_snapshot_by_category(self):
        grid = GridIndex(8)
        grid.insert("a", (0.1, 0.2), "A")
        grid.insert("b", (0.3, 0.4), "B")
        assert grid.positions_snapshot("A") == {"a": (0.1, 0.2)}
        assert set(grid.positions_snapshot()) == {"a", "b"}
