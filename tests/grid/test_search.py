"""Unit tests for repro.grid.search.GridSearch."""

import math
import random

import pytest

from repro.geometry.bisector import bisector_halfplane
from repro.geometry.point import dist
from repro.grid.alive import AliveCellGrid
from repro.grid.index import GridIndex
from repro.grid.search import GridSearch, SearchKind


def brute_nearest(grid, q, exclude=(), category=None):
    best = None
    best_d = math.inf
    for oid in grid.objects(category):
        if oid in exclude:
            continue
        d = dist(grid.position(oid), q)
        if d < best_d:
            best_d = d
            best = oid
    return None if best is None else (best, best_d)


@pytest.fixture
def searched(small_grid):
    return small_grid, GridSearch(small_grid)


class TestNearest:
    def test_matches_brute_force(self, searched, rng):
        grid, search = searched
        for _ in range(50):
            q = (rng.random(), rng.random())
            got = search.nearest(q)
            expected = brute_nearest(grid, q)
            assert got is not None
            assert got[0] == expected[0]
            assert math.isclose(got[1], expected[1], rel_tol=1e-9)

    def test_exclusion(self, searched, rng):
        grid, search = searched
        q = (0.5, 0.5)
        first = search.nearest(q)[0]
        second = search.nearest(q, exclude={first})[0]
        assert second != first
        assert second == brute_nearest(grid, q, exclude={first})[0]

    def test_empty_grid_returns_none(self):
        grid = GridIndex(8)
        assert GridSearch(grid).nearest((0.5, 0.5)) is None

    def test_category_filter(self, bi_grid, rng):
        search = GridSearch(bi_grid)
        q = (0.4, 0.6)
        got = search.nearest(q, category="A")
        expected = brute_nearest(bi_grid, q, category="A")
        assert got[0] == expected[0]

    def test_radius_bound(self, searched):
        grid, search = searched
        q = (0.5, 0.5)
        unbounded = search.nearest(q)
        oid, d = unbounded
        assert search.nearest(q, radius=d * 2) == unbounded
        # A radius below the nearest distance finds nothing.
        assert search.nearest(q, radius=d * 0.5) is None

    def test_alive_mask_restriction(self, searched):
        grid, search = searched
        q = (0.5, 0.5)
        alive = AliveCellGrid(grid.size, grid.extent)
        # Kill everything right of x=0.5 via a bisector.
        alive.add_halfplane(bisector_halfplane((0.25, 0.5), (0.75, 0.5)))
        got = search.nearest((0.25, 0.5), alive=alive, kind=SearchKind.CONSTRAINED)
        assert got is not None
        pos = grid.position(got[0])
        # The object must sit in an alive cell (x below ~0.5 + one cell).
        assert pos.x <= 0.5 + 1.0 / grid.size + 1e-9

    def test_query_cell_filtered_out_returns_none(self, searched):
        grid, search = searched
        assert (
            search.nearest((0.5, 0.5), cell_filter=lambda key: False) is None
        )

    def test_obj_filter(self, searched):
        grid, search = searched
        q = (0.5, 0.5)
        first = search.nearest(q)[0]
        got = search.nearest(q, obj_filter=lambda oid, pos: oid != first)
        assert got[0] != first

    def test_stats_accounting(self, searched):
        grid, search = searched
        search.nearest((0.5, 0.5), kind=SearchKind.CONSTRAINED)
        assert search.stats.calls[SearchKind.CONSTRAINED] == 1
        assert search.stats.calls[SearchKind.UNCONSTRAINED] == 0
        assert search.stats.total_cells > 0
        snap = search.stats.snapshot()
        assert snap["calls_NN_c"] == 1
        search.stats.reset()
        assert search.stats.total_calls == 0


class TestKNearest:
    def test_matches_sorted_brute_force(self, searched, rng):
        grid, search = searched
        q = (0.3, 0.7)
        got = search.k_nearest(q, 5)
        expected = sorted(
            ((dist(grid.position(o), q), o) for o in grid.objects()),
        )[:5]
        assert [oid for oid, _ in got] == [o for _, o in expected]

    def test_k_larger_than_population(self, rng):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.1))
        grid.insert(2, (0.9, 0.9))
        got = GridSearch(grid).k_nearest((0.0, 0.0), 10)
        assert [oid for oid, _ in got] == [1, 2]

    def test_invalid_k(self, searched):
        _, search = searched
        with pytest.raises(ValueError):
            search.k_nearest((0.5, 0.5), 0)


class TestCountCloserThan:
    def test_matches_brute_force(self, searched, rng):
        grid, search = searched
        for _ in range(30):
            center = (rng.random(), rng.random())
            threshold = rng.random() * 0.4
            expected = sum(
                1
                for o in grid.objects()
                if dist(grid.position(o), center) < threshold
            )
            assert search.count_closer_than(center, threshold) == expected

    def test_stop_at_short_circuits(self, searched):
        grid, search = searched
        count = search.count_closer_than((0.5, 0.5), 1.5, stop_at=3)
        assert count == 3

    def test_zero_threshold(self, searched):
        _, search = searched
        assert search.count_closer_than((0.5, 0.5), 0.0) == 0

    def test_exclusion(self, searched):
        grid, search = searched
        center = grid.position(0)
        with_self = search.count_closer_than(center, 0.2)
        without = search.count_closer_than(center, 0.2, exclude={0})
        # Object 0 sits at distance 0 < 0.2 from itself.
        assert with_self == without + 1

    def test_subnormal_threshold_exact_tie_not_counted(self):
        """Regression: squaring a subnormal threshold underflows to 0.0,
        at which point squared distances can't discriminate — an object
        at *exactly* the threshold distance (whose squared distance also
        underflows to 0.0) was once counted as strictly closer.  The
        degenerate path must fall back to unsquared comparison."""
        tiny = 2.225073858507203e-309
        grid = GridIndex(4)
        grid.insert(0, (0.0, tiny))
        search = GridSearch(grid)
        assert search.count_closer_than((0.0, 0.0), tiny) == 0

    def test_subnormal_threshold_still_counts_strictly_closer(self):
        tiny = 2.225073858507203e-309
        grid = GridIndex(4)
        grid.insert(0, (0.0, tiny / 2.0))
        search = GridSearch(grid)
        assert search.count_closer_than((0.0, 0.0), tiny) == 1


class TestIterNearest:
    def test_yields_in_distance_order(self, searched):
        grid, search = searched
        q = (0.4, 0.4)
        stream = list(search.iter_nearest(q))
        assert len(stream) == len(grid)
        distances = [d for _, d in stream]
        assert distances == sorted(distances)

    def test_prefix_matches_k_nearest(self, searched):
        grid, search = searched
        q = (0.6, 0.2)
        stream = []
        for item in search.iter_nearest(q):
            stream.append(item[0])
            if len(stream) == 7:
                break
        assert stream == [oid for oid, _ in search.k_nearest(q, 7)]

    def test_exclusion_and_category(self, bi_grid):
        search = GridSearch(bi_grid)
        skip = next(iter(bi_grid.objects("A")))
        for oid, _ in search.iter_nearest((0.5, 0.5), exclude={skip}, category="A"):
            assert oid != skip
            assert bi_grid.category(oid) == "A"


class TestRegionScans:
    def _region(self, grid):
        alive = AliveCellGrid(grid.size, grid.extent)
        q = (0.5, 0.5)
        for o in [(0.8, 0.5), (0.5, 0.8), (0.2, 0.5), (0.5, 0.2)]:
            alive.add_halfplane(bisector_halfplane(q, o))
        return alive

    def test_objects_in_alive(self, searched):
        grid, search = searched
        alive = self._region(grid)
        found = set(search.objects_in_alive(alive))
        for oid in grid.objects():
            key = grid.cell_of(oid)
            if alive.is_alive(key) and oid not in found:
                # Only cells outside the polygon bbox may be skipped, and
                # those hold no point-alive object.
                assert not alive.point_alive(grid.position(oid))

    def test_region_objects_by_distance_sorted(self, searched):
        grid, search = searched
        alive = self._region(grid)
        out = search.region_objects_by_distance((0.5, 0.5), alive)
        d2s = [d2 for d2, _ in out]
        assert d2s == sorted(d2s)
        assert search.stats.calls[SearchKind.BOUNDED] == 1

    def test_any_object_in_alive(self, searched):
        grid, search = searched
        alive = self._region(grid)
        expected = len(list(search.objects_in_alive(alive))) > 0
        assert search.any_object_in_alive(alive) == expected
