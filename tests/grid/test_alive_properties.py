"""Property-based invariants of the alive-cell tracker (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.bisector import bisector_halfplane
from repro.grid.alive import AliveCellGrid

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
point = st.tuples(unit, unit)
sites = st.lists(point, min_size=0, max_size=8)
ks = st.integers(min_value=1, max_value=3)
grid_sizes = st.sampled_from([4, 9, 16])


def build(n, k, q, others):
    region = AliveCellGrid(n, k=k)
    for o in others:
        if o != q:
            region.add_halfplane(bisector_halfplane(q, o))
    return region


class TestLazyDenseEquivalence:
    @given(grid_sizes, ks, point, sites)
    @settings(max_examples=80)
    def test_is_alive_matches_dense_coverage(self, n, k, q, others):
        region = build(n, k, q, others)
        coverage = region._dense_coverage()
        for ix in range(n):
            for iy in range(n):
                assert region.is_alive((ix, iy)) == (coverage[ix, iy] < k)

    @given(grid_sizes, point, sites)
    @settings(max_examples=60)
    def test_coverage_method_matches_dense(self, n, q, others):
        region = build(n, 1, q, others)
        coverage = region._dense_coverage()
        for ix in range(n):
            for iy in range(n):
                assert region.coverage((ix, iy)) == int(coverage[ix, iy])


class TestRegionInvariants:
    @given(grid_sizes, point, sites)
    @settings(max_examples=80)
    def test_query_cell_always_alive(self, n, q, others):
        """Every bisector keeps the query side, so q's cell survives."""
        region = build(n, 1, q, others)
        from repro.grid.cell import cell_key_of

        assert region.is_alive(cell_key_of(region.extent, n, q))
        assert region.point_alive(q)

    @given(grid_sizes, point, sites)
    @settings(max_examples=60)
    def test_alive_cells_subset_of_is_alive(self, n, q, others):
        region = build(n, 1, q, others)
        for key in region.alive_cells():
            assert region.is_alive(key)

    @given(grid_sizes, point, sites, point)
    @settings(max_examples=80)
    def test_point_alive_points_are_enumerated(self, n, q, others, p):
        """Completeness of enumeration: any surviving point's cell is
        yielded by alive_cells()."""
        region = build(n, 1, q, others)
        assume(region.point_alive(p))
        from repro.grid.cell import cell_key_of

        assert cell_key_of(region.extent, n, p) in set(region.alive_cells())

    @given(grid_sizes, point, sites)
    @settings(max_examples=60)
    def test_adding_planes_never_enlarges(self, n, q, others):
        region = AliveCellGrid(n)
        previous = n * n
        for o in others:
            if o == q:
                continue
            region.add_halfplane(bisector_halfplane(q, o))
            count = sum(
                1
                for ix in range(n)
                for iy in range(n)
                if region.is_alive((ix, iy))
            )
            assert count <= previous
            previous = count

    @given(grid_sizes, point, sites)
    @settings(max_examples=60)
    def test_add_remove_roundtrip(self, n, q, others):
        others = [o for o in others if o != q]
        assume(others)
        region = build(n, 1, q, others[:-1])
        before = {(ix, iy): region.is_alive((ix, iy)) for ix in range(n) for iy in range(n)}
        hp = bisector_halfplane(q, others[-1])
        region.add_halfplane(hp)
        region.remove_halfplane(hp)
        after = {(ix, iy): region.is_alive((ix, iy)) for ix in range(n) for iy in range(n)}
        assert before == after


class TestRedundancyInvariant:
    @given(point, sites)
    @settings(max_examples=60)
    def test_removing_non_unique_plane_keeps_exact_region(self, q, others):
        others = [o for o in others if o != q]
        assume(len(others) >= 2)
        region = build(16, 1, q, others)
        area_before = region.region_polygon().area()
        removable = [
            bisector_halfplane(q, o)
            for o in others
            if not region.kills_uniquely(bisector_halfplane(q, o))
        ]
        assume(removable)
        region.remove_halfplane(removable[0], region_unchanged=True)
        assert abs(region.region_polygon().area() - area_before) < 1e-9
