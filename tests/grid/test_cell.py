"""Unit tests for repro.grid.cell coordinate math."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.grid.cell import cell_key_of, cell_min_dist_sq, cell_rect_of

unit_coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
grid_n = st.integers(min_value=1, max_value=64)


class TestCellKeyOf:
    def test_origin_maps_to_first_cell(self):
        assert cell_key_of(Rect.unit(), 4, (0.0, 0.0)) == (0, 0)

    def test_max_corner_clamped_to_last_cell(self):
        assert cell_key_of(Rect.unit(), 4, (1.0, 1.0)) == (3, 3)

    def test_interior_point(self):
        assert cell_key_of(Rect.unit(), 4, (0.30, 0.80)) == (1, 3)

    def test_out_of_extent_clamped(self):
        assert cell_key_of(Rect.unit(), 4, (-0.5, 2.0)) == (0, 3)

    def test_non_unit_extent(self):
        extent = Rect(10.0, 20.0, 30.0, 40.0)
        assert cell_key_of(extent, 2, (10.0, 20.0)) == (0, 0)
        assert cell_key_of(extent, 2, (25.0, 35.0)) == (1, 1)

    @given(grid_n, unit_coord, unit_coord)
    def test_point_lies_in_its_cell(self, n, x, y):
        key = cell_key_of(Rect.unit(), n, (x, y))
        rect = cell_rect_of(Rect.unit(), n, key)
        assert rect.contains((x, y))

    def test_boundary_point_agrees_with_cell_rect(self):
        # 0.6 * 5 rounds to 3.0000000000000004 while cell 3's lower edge
        # 3 * 0.2 rounds to 0.6000000000000001 — the divided index must
        # be corrected to match the multiplied edges.
        key = cell_key_of(Rect.unit(), 5, (0.0, 0.6))
        assert cell_rect_of(Rect.unit(), 5, key).contains((0.0, 0.6))
        assert key == (0, 2)


class TestCellRectOf:
    def test_covers_extent_exactly(self):
        extent = Rect.unit()
        n = 3
        total = sum(cell_rect_of(extent, n, (i, j)).area for i in range(n) for j in range(n))
        assert math.isclose(total, 1.0)

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            cell_rect_of(Rect.unit(), 4, (4, 0))
        with pytest.raises(IndexError):
            cell_rect_of(Rect.unit(), 4, (0, -1))

    def test_cell_rects_tile_without_overlap(self):
        extent = Rect.unit()
        a = cell_rect_of(extent, 4, (0, 0))
        b = cell_rect_of(extent, 4, (1, 0))
        assert math.isclose(a.xmax, b.xmin)


class TestCellMinDist:
    @given(grid_n, unit_coord, unit_coord, st.integers(0, 63), st.integers(0, 63))
    def test_matches_rect_min_dist(self, n, x, y, ix, iy):
        ix %= n
        iy %= n
        rect = cell_rect_of(Rect.unit(), n, (ix, iy))
        expected = rect.min_dist_sq((x, y))
        got = cell_min_dist_sq(Rect.unit(), n, (ix, iy), (x, y))
        assert math.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-12)

    def test_zero_inside_own_cell(self):
        key = cell_key_of(Rect.unit(), 8, (0.33, 0.77))
        assert cell_min_dist_sq(Rect.unit(), 8, key, (0.33, 0.77)) == 0.0
