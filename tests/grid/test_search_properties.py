"""Property-based tests for the grid search (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import dist
from repro.grid.index import GridIndex
from repro.grid.search import GridSearch

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
points = st.lists(st.tuples(unit, unit), min_size=1, max_size=60)
grid_sizes = st.sampled_from([1, 2, 5, 16, 33])


def build(grid_size, pts):
    grid = GridIndex(grid_size)
    for i, p in enumerate(pts):
        grid.insert(i, p)
    return grid, GridSearch(grid)


class TestNearestProperties:
    @given(grid_sizes, points, unit, unit)
    @settings(max_examples=80)
    def test_nearest_is_global_minimum(self, n, pts, qx, qy):
        grid, search = build(n, pts)
        got = search.nearest((qx, qy))
        assert got is not None
        oid, d = got
        best = min(dist(p, (qx, qy)) for p in pts)
        assert math.isclose(d, best, rel_tol=1e-9, abs_tol=1e-12)

    @given(grid_sizes, points, unit, unit)
    @settings(max_examples=50)
    def test_radius_semantics(self, n, pts, qx, qy):
        grid, search = build(n, pts)
        best = min(dist(p, (qx, qy)) for p in pts)
        below = search.nearest((qx, qy), radius=best * 0.99 if best > 0 else 0.0)
        if best > 1e-12:
            assert below is None
        above = search.nearest((qx, qy), radius=best * 1.01 + 1e-9)
        assert above is not None

    @given(grid_sizes, points, unit, unit, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_k_nearest_matches_sort(self, n, pts, qx, qy, k):
        grid, search = build(n, pts)
        got = [d for _, d in search.k_nearest((qx, qy), k)]
        expected = sorted(dist(p, (qx, qy)) for p in pts)[:k]
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert math.isclose(g, e, rel_tol=1e-9, abs_tol=1e-12)

    @given(grid_sizes, points, unit, unit, unit)
    @settings(max_examples=60)
    def test_count_closer_than_matches(self, n, pts, qx, qy, threshold):
        grid, search = build(n, pts)
        expected = sum(1 for p in pts if dist(p, (qx, qy)) < threshold)
        assert search.count_closer_than((qx, qy), threshold) == expected

    @given(grid_sizes, points, unit, unit)
    @settings(max_examples=40)
    def test_iter_nearest_is_monotone_and_complete(self, n, pts, qx, qy):
        grid, search = build(n, pts)
        stream = list(search.iter_nearest((qx, qy)))
        assert len(stream) == len(pts)
        ds = [d for _, d in stream]
        assert all(a <= b + 1e-12 for a, b in zip(ds, ds[1:]))
