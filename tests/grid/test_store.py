"""Property-based equivalence suite for the object-store backends.

The columnar struct-of-arrays layout, its forced-scalar variant and the
dict-backed mapping reference are three implementations of one storage
contract behind ``GridIndex(store=...)``.  Every test here drives the
backends in lockstep over the same operation sequence and asserts their
observable state — and the search kernels computed over them — never
differ.  The columnar side additionally self-checks its full
row/bucket/free-list consistency contract after every batch
(:meth:`ColumnarStore.check_invariants`), and a churn test pins the
free-list compaction behaviour.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.index import GridIndex
from repro.grid.search import GridSearch
from repro.grid.store import COMPACT_MIN_FREE, ColumnarStore

BACKENDS = ("columnar", "columnar-scalar", "mapping")

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
point = st.tuples(unit, unit)
category = st.sampled_from([None, "A", "B"])
grid_sizes = st.sampled_from([1, 3, 8, 17])

#: One mutation: ("insert", pos, cat) | ("move", idx, pos) | ("remove", idx).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), point, category),
        st.tuples(st.just("move"), st.integers(min_value=0), point),
        st.tuples(st.just("remove"), st.integers(min_value=0)),
    ),
    max_size=60,
)


def _apply_ops(grid: GridIndex, op_list):
    """Replay a mutation script; index-style references resolve against
    the currently live id list so every backend sees identical calls."""
    live = []
    next_id = 0
    for op in op_list:
        if op[0] == "insert":
            _, pos, cat = op
            grid.insert(next_id, pos, cat)
            live.append(next_id)
            next_id += 1
        elif op[0] == "move" and live:
            _, idx, pos = op
            grid.move(live[idx % len(live)], pos)
        elif op[0] == "remove" and live:
            _, idx = op
            grid.remove(live.pop(idx % len(live)))
    return live


def _observable_state(grid: GridIndex):
    """Everything a caller can see through the storage seam."""
    cells = {}
    for key in grid.occupied_cells():
        for cat in (None, "A", "B"):
            members = frozenset(grid.objects_in_cell(key, cat))
            if members:
                cells[(key, cat)] = members
                assert grid.cell_population(key, cat) == len(members)
    return {
        "len": len(grid),
        "positions": grid.positions_snapshot(),
        "cells": cells,
        "occupied": frozenset(grid.occupied_cells()),
        "occupied_count": grid.occupied_count(),
        "objects": frozenset(grid.objects()),
        "categories": {
            cat: frozenset(grid.objects(cat)) for cat in (None, "A", "B")
        },
    }


class TestBackendEquivalence:
    @given(grid_sizes, ops)
    @settings(max_examples=60, deadline=None)
    def test_mutation_sequences_agree(self, n, op_list):
        grids = {kind: GridIndex(n, store=kind) for kind in BACKENDS}
        states = {}
        for kind, grid in grids.items():
            _apply_ops(grid, op_list)
            if isinstance(grid._store, ColumnarStore):
                grid._store.check_invariants()
            states[kind] = _observable_state(grid)
        assert states["columnar"] == states["mapping"]
        assert states["columnar-scalar"] == states["mapping"]

    @given(
        grid_sizes,
        st.lists(st.tuples(point, category), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_updates_agrees(self, n, initial, data):
        grids = {kind: GridIndex(n, store=kind) for kind in BACKENDS}
        for kind, grid in grids.items():
            for i, (pos, cat) in enumerate(initial):
                grid.insert(i, pos, cat)
        n_initial = len(initial)
        moves = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n_initial - 1), point
                ),
                max_size=30,
            )
        )
        removes = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_initial - 1),
                    max_size=5,
                )
            )
        )
        inserts = [
            (n_initial + i, pos, cat)
            for i, (pos, cat) in enumerate(
                data.draw(st.lists(st.tuples(point, category), max_size=5))
            )
        ]
        moves = [(oid, pos) for oid, pos in moves if oid not in set(removes)]
        deltas = {}
        for kind, grid in grids.items():
            delta = grid.apply_updates(moves, inserts=inserts, removes=removes)
            deltas[kind] = (
                frozenset(delta.moved),
                frozenset(delta.dirty_cells),
                frozenset(delta.touched_cells),
            )
            if isinstance(grid._store, ColumnarStore):
                grid._store.check_invariants()
        assert deltas["columnar"] == deltas["mapping"]
        assert deltas["columnar-scalar"] == deltas["mapping"]
        states = {k: _observable_state(g) for k, g in grids.items()}
        assert states["columnar"] == states["mapping"]
        assert states["columnar-scalar"] == states["mapping"]


class TestKernelEquivalence:
    """The rewritten scan kernels, slab path against the scalar paths."""

    @given(
        grid_sizes,
        st.lists(point, min_size=1, max_size=80),
        point,
        unit,
    )
    @settings(max_examples=60, deadline=None)
    def test_count_and_witnesses_agree(self, n, pts, q, threshold):
        t2 = threshold * threshold
        results = {}
        for kind in BACKENDS:
            grid = GridIndex(n, store=kind)
            for i, p in enumerate(pts):
                grid.insert(i, p)
            search = GridSearch(grid)
            results[kind] = (
                search.count_closer_than(q, threshold_sq=t2),
                sorted(search.witnesses_closer_than(q, t2)),
                search.count_closer_than(q, threshold_sq=t2, stop_at=2),
                search.count_closer_than(
                    q, threshold_sq=t2, threshold_point=q
                ),
            )
        assert results["columnar"] == results["mapping"]
        assert results["columnar-scalar"] == results["mapping"]

    @given(grid_sizes, st.lists(point, min_size=1, max_size=80), point)
    @settings(max_examples=60, deadline=None)
    def test_nearest_agrees_on_distance(self, n, pts, q):
        best = {}
        for kind in BACKENDS:
            grid = GridIndex(n, store=kind)
            for i, p in enumerate(pts):
                grid.insert(i, p)
            hit = GridSearch(grid).nearest(q)
            assert hit is not None
            best[kind] = hit[1]
        # Exact distance ties may resolve to different (equally valid)
        # winners across layouts; the minimum distance itself must be
        # bit-identical.
        assert best["columnar"] == best["mapping"]
        assert best["columnar-scalar"] == best["mapping"]


class TestCompaction:
    def test_churn_triggers_compaction_and_preserves_state(self):
        grid = GridIndex(8, store="columnar")
        store = grid._store
        total = COMPACT_MIN_FREE * 3
        for i in range(total):
            grid.insert(i, ((i % 97) / 97.0, (i % 89) / 89.0))
        capacity_before = len(store.oids)
        survivors = {}
        for i in range(total):
            if i % 3:
                grid.remove(i)
            else:
                survivors[i] = grid.position(i)
        # Far more rows were freed than the compaction threshold keeps.
        assert len(store.free) < COMPACT_MIN_FREE
        assert len(store.oids) < capacity_before
        store.check_invariants()
        assert len(grid) == len(survivors)
        for oid, pos in survivors.items():
            p = grid.position(oid)
            assert (p.x, p.y) == (pos.x, pos.y)

    def test_free_rows_are_recycled_before_growth(self):
        grid = GridIndex(4, store="columnar")
        store = grid._store
        for i in range(100):
            grid.insert(i, (0.5, 0.5))
        for i in range(50):
            grid.remove(i)
        free_before = len(store.free)
        assert free_before == 50
        for i in range(100, 150):
            grid.insert(i, (0.25, 0.75))
        assert len(store.free) == 0
        store.check_invariants()

    def test_compaction_keeps_search_results(self):
        grid = GridIndex(8, store="columnar")
        pts = [
            ((i % 53) / 53.0, (i % 47) / 47.0)
            for i in range(COMPACT_MIN_FREE * 2)
        ]
        for i, p in enumerate(pts):
            grid.insert(i, p)
        for i in range(0, COMPACT_MIN_FREE * 2, 2):
            grid.remove(i)
        grid._store.check_invariants()
        search = GridSearch(grid)
        q = (0.31, 0.62)
        got = sorted(search.witnesses_closer_than(q, 0.04))
        expected = sorted(
            (i, (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2)
            for i, p in enumerate(pts)
            if i % 2 and (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2 < 0.04
        )
        assert [oid for oid, _ in got] == [oid for oid, _ in expected]
        for (_, d_got), (_, d_exp) in zip(got, expected):
            assert math.isclose(d_got, d_exp, rel_tol=0.0, abs_tol=0.0)
