"""Tests for the range-query API (objects_within)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import dist
from repro.grid.index import GridIndex
from repro.grid.search import GridSearch

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
points = st.lists(st.tuples(unit, unit), min_size=0, max_size=50)


class TestObjectsWithin:
    def test_negative_radius_rejected(self, small_grid):
        with pytest.raises(ValueError):
            GridSearch(small_grid).objects_within((0.5, 0.5), -0.1)

    def test_sorted_by_distance(self, small_grid):
        search = GridSearch(small_grid)
        result = search.objects_within((0.5, 0.5), 0.3)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_closed_ball_semantics(self):
        grid = GridIndex(8)
        grid.insert("on", (0.7, 0.5))  # exactly at radius 0.2
        grid.insert("out", (0.71, 0.5))
        search = GridSearch(grid)
        found = {oid for oid, _ in search.objects_within((0.5, 0.5), 0.2)}
        assert found == {"on"}

    def test_zero_radius_finds_coincident(self):
        grid = GridIndex(8)
        grid.insert("here", (0.5, 0.5))
        grid.insert("there", (0.6, 0.5))
        search = GridSearch(grid)
        found = {oid for oid, _ in search.objects_within((0.5, 0.5), 0.0)}
        assert found == {"here"}

    def test_exclusion_and_category(self, bi_grid):
        search = GridSearch(bi_grid)
        all_a = search.objects_within((0.5, 0.5), 0.4, category="A")
        assert all(bi_grid.category(oid) == "A" for oid, _ in all_a)
        if all_a:
            skip = all_a[0][0]
            without = search.objects_within(
                (0.5, 0.5), 0.4, category="A", exclude={skip}
            )
            assert skip not in {oid for oid, _ in without}

    @given(points, unit, unit, unit)
    @settings(max_examples=60)
    def test_matches_brute_force(self, pts, qx, qy, radius):
        grid = GridIndex(9)
        for i, p in enumerate(pts):
            grid.insert(i, p)
        search = GridSearch(grid)
        got = {oid for oid, _ in search.objects_within((qx, qy), radius)}
        expected = {
            i for i, p in enumerate(pts) if dist(p, (qx, qy)) <= radius
        }
        # Boundary ulps: allow discrepancy only for points exactly at the
        # radius within float noise.
        sym_diff = got ^ expected
        for i in sym_diff:
            assert math.isclose(dist(pts[i], (qx, qy)), radius, rel_tol=1e-9, abs_tol=1e-12)
