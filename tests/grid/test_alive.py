"""Unit tests for repro.grid.alive.AliveCellGrid."""

import math
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.bisector import bisector_halfplane
from repro.geometry.halfplane import HalfPlane
from repro.grid.alive import AliveCellGrid
from repro.grid.cell import cell_rect_of

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def brute_alive(region: AliveCellGrid, key) -> bool:
    """Reference implementation: count covering half-planes directly."""
    rect = cell_rect_of(region.extent, region.size, key)
    covered = sum(
        1
        for hp in region.halfplanes
        if hp.rect_outside(rect.xmin, rect.ymin, rect.xmax, rect.ymax)
    )
    return covered < region.k


class TestConstruction:
    def test_all_alive_initially(self):
        region = AliveCellGrid(8)
        assert region.alive_count() == 64
        assert region.is_alive((0, 0))
        assert region.alive_fraction() == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AliveCellGrid(0)
        with pytest.raises(ValueError):
            AliveCellGrid(8, k=0)


class TestHalfPlaneApplication:
    def test_halfplane_kills_far_side(self):
        region = AliveCellGrid(8)
        # Keep x <= 0.5 (bisector of q=(0.25,0.5) and o=(0.75,0.5)).
        region.add_halfplane(bisector_halfplane((0.25, 0.5), (0.75, 0.5)))
        assert region.is_alive((0, 4))
        assert not region.is_alive((7, 4))
        # Cells straddling x = 0.5 stay alive.
        assert region.is_alive((4, 4)) or region.is_alive((3, 4))

    def test_lazy_matches_brute_force(self):
        rng = random.Random(2)
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        for _ in range(5):
            o = (rng.random(), rng.random())
            if o != q:
                region.add_halfplane(bisector_halfplane(q, o))
        for ix in range(16):
            for iy in range(16):
                assert region.is_alive((ix, iy)) == brute_alive(region, (ix, iy))

    def test_reset(self):
        region = AliveCellGrid(8)
        region.add_halfplane(HalfPlane(1.0, 0.0, -0.5))
        region.reset()
        assert region.alive_count() == 64
        assert region.halfplanes == []

    def test_rebuild_equivalent_to_adds(self):
        planes = [
            bisector_halfplane((0.5, 0.5), (0.9, 0.5)),
            bisector_halfplane((0.5, 0.5), (0.5, 0.9)),
            bisector_halfplane((0.5, 0.5), (0.1, 0.2)),
        ]
        added = AliveCellGrid(16)
        for hp in planes:
            added.add_halfplane(hp)
        rebuilt = AliveCellGrid(16)
        rebuilt.rebuild(planes)
        for ix in range(16):
            for iy in range(16):
                assert added.is_alive((ix, iy)) == rebuilt.is_alive((ix, iy))

    def test_remove_halfplane_restores(self):
        region = AliveCellGrid(8)
        hp = HalfPlane(1.0, 0.0, -0.5)  # x >= 0.5
        region.add_halfplane(hp)
        assert region.alive_count() < 64
        region.remove_halfplane(hp)
        assert region.alive_count() == 64

    def test_remove_missing_raises(self):
        region = AliveCellGrid(8)
        with pytest.raises(ValueError):
            region.remove_halfplane(HalfPlane(1.0, 0.0, 0.0))

    def test_memo_invalidation_on_mutation(self):
        region = AliveCellGrid(8)
        key = (7, 4)
        assert region.is_alive(key)  # populates the memo
        region.add_halfplane(HalfPlane(-1.0, 0.0, 0.5))  # x <= 0.5
        assert not region.is_alive(key)


class TestPointAlive:
    def test_point_alive_exact(self):
        region = AliveCellGrid(8)
        region.add_halfplane(HalfPlane(-1.0, 0.0, 0.5))  # keep x <= 0.5
        assert region.point_alive((0.4, 0.9))
        assert not region.point_alive((0.6, 0.9))

    def test_point_alive_respects_k(self):
        region = AliveCellGrid(8, k=2)
        region.add_halfplane(HalfPlane(-1.0, 0.0, 0.5))  # x <= 0.5
        region.add_halfplane(HalfPlane(0.0, -1.0, 0.5))  # y <= 0.5
        assert region.point_alive((0.6, 0.4))  # excluded by one plane only
        assert not region.point_alive((0.6, 0.6))  # excluded by both

    def test_exact_tie_boundary_point_stays_alive(self):
        """Regression: a point exactly on the bisector can evaluate a
        hair negative through the rounded half-plane coefficients (here
        ~-1.1e-16); the tolerance margin must keep boundary points alive
        — conservative, since verification decides them exactly."""
        region = AliveCellGrid(8)
        region.add_halfplane(
            bisector_halfplane((1.0, 1.0), (0.871094, 0.871094))
        )
        # (1.0, 0.871094) is equidistant from both defining points.
        assert region.point_alive((1.0, 0.871094))


class TestRegionEnumeration:
    def test_region_polygon_matches_clipping(self):
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        for o in [(0.9, 0.5), (0.5, 0.9), (0.1, 0.5), (0.5, 0.1)]:
            region.add_halfplane(bisector_halfplane(q, o))
        poly = region.region_polygon()
        assert math.isclose(poly.area(), 0.16, rel_tol=1e-9)  # 0.4^2 box

    def test_region_polygon_requires_k1(self):
        region = AliveCellGrid(8, k=2)
        with pytest.raises(ValueError):
            region.region_polygon()

    def test_alive_cells_cover_polygon(self):
        """Every cell intersecting the exact region is enumerated."""
        rng = random.Random(9)
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        for _ in range(6):
            region.add_halfplane(bisector_halfplane(q, (rng.random(), rng.random())))
        alive = set(region.alive_cells())
        # Sample points of the exact region; their cells must be listed.
        for _ in range(500):
            p = (rng.random(), rng.random())
            if region.point_alive(p):
                ix = min(15, int(p[0] * 16))
                iy = min(15, int(p[1] * 16))
                assert (ix, iy) in alive

    def test_alive_cells_k2_dense_path(self):
        region = AliveCellGrid(8, k=2)
        region.add_halfplane(HalfPlane(-1.0, 0.0, 0.25))  # x <= 0.25
        cells = set(region.alive_cells())
        assert len(cells) == 64  # one plane cannot kill anything at k=2
        region.add_halfplane(HalfPlane(-1.0, 0.0, 0.20))  # x <= 0.20
        cells = set(region.alive_cells())
        assert len(cells) < 64
        assert (0, 0) in cells

    def test_alive_cell_bound_upper_bounds_count(self):
        rng = random.Random(4)
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        for _ in range(5):
            region.add_halfplane(bisector_halfplane(q, (rng.random(), rng.random())))
        assert region.alive_count() <= region.alive_cell_bound()


class TestRedundancy:
    def test_active_plane_kills_uniquely(self):
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        hp = bisector_halfplane(q, (0.9, 0.5))
        region.add_halfplane(hp)
        assert region.kills_uniquely(hp)

    def test_covered_plane_is_redundant(self):
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        near = bisector_halfplane(q, (0.7, 0.5))
        far = bisector_halfplane(q, (0.95, 0.5))  # strictly behind `near`
        region.add_halfplane(near)
        region.add_halfplane(far)
        assert not region.kills_uniquely(far)
        assert region.kills_uniquely(near)

    def test_removing_redundant_plane_keeps_region(self):
        region = AliveCellGrid(16)
        q = (0.5, 0.5)
        near = bisector_halfplane(q, (0.7, 0.5))
        far = bisector_halfplane(q, (0.95, 0.5))
        region.add_halfplane(near)
        region.add_halfplane(far)
        area_before = region.region_polygon().area()
        region.remove_halfplane(far, region_unchanged=True)
        assert math.isclose(region.region_polygon().area(), area_before)

    def test_kills_uniquely_dense_path_k2(self):
        region = AliveCellGrid(8, k=2)
        a = HalfPlane(-1.0, 0.0, 0.3)  # x <= 0.3
        b = HalfPlane(-1.0, 0.0, 0.35)  # x <= 0.35
        region.add_halfplane(a)
        region.add_halfplane(b)
        # Together they kill cells right of x=0.35 (covered by both).
        assert region.alive_count() < 64
        # Each is needed: removing either resurrects those cells.
        assert region.kills_uniquely(a)
        assert region.kills_uniquely(b)
