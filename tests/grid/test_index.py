"""Unit tests for repro.grid.index.GridIndex."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.grid.index import GridIndex


class TestInsertRemove:
    def test_insert_and_lookup(self):
        grid = GridIndex(8)
        grid.insert("a", (0.1, 0.2))
        assert "a" in grid
        assert grid.position("a") == Point(0.1, 0.2)
        assert grid.category("a") == 0
        assert len(grid) == 1

    def test_duplicate_insert_raises(self):
        grid = GridIndex(8)
        grid.insert(1, (0.5, 0.5))
        with pytest.raises(KeyError):
            grid.insert(1, (0.6, 0.6))

    def test_remove_returns_position(self):
        grid = GridIndex(8)
        grid.insert(1, (0.5, 0.5))
        pos = grid.remove(1)
        assert pos == Point(0.5, 0.5)
        assert 1 not in grid
        assert len(grid) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            GridIndex(8).remove("ghost")

    def test_remove_cleans_empty_cells(self):
        grid = GridIndex(8)
        grid.insert(1, (0.5, 0.5))
        grid.remove(1)
        assert list(grid.occupied_cells()) == []

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            GridIndex(0)

    def test_upsert_inserts_then_moves(self):
        grid = GridIndex(8)
        grid.upsert(1, (0.1, 0.1))
        grid.upsert(1, (0.9, 0.9))
        assert grid.position(1) == Point(0.9, 0.9)
        assert len(grid) == 1


class TestMove:
    def test_move_within_cell_not_counted(self):
        grid = GridIndex(4)
        grid.insert(1, (0.1, 0.1))
        changed = grid.move(1, (0.15, 0.12))
        assert not changed
        assert grid.cell_changes == 0
        assert grid.updates == 1

    def test_move_across_cells_counted(self):
        grid = GridIndex(4)
        grid.insert(1, (0.1, 0.1))
        changed = grid.move(1, (0.9, 0.9))
        assert changed
        assert grid.cell_changes == 1
        assert grid.cell_of(1) == (3, 3)

    def test_move_updates_cell_membership(self):
        grid = GridIndex(4)
        grid.insert(1, (0.1, 0.1))
        old_key = grid.cell_of(1)
        grid.move(1, (0.9, 0.9))
        assert 1 not in set(grid.objects_in_cell(old_key))
        assert 1 in set(grid.objects_in_cell((3, 3)))

    def test_move_out_of_extent_clamps(self):
        grid = GridIndex(4)
        grid.insert(1, (0.5, 0.5))
        grid.move(1, (1.7, -0.3))
        assert grid.cell_of(1) == (3, 0)

    def test_finer_grid_sees_more_cell_changes(self):
        """The Figure 5a effect: resolution multiplies maintenance."""
        import random

        rng = random.Random(0)
        points = [(rng.random(), rng.random()) for _ in range(200)]
        steps = [
            (min(max(x + rng.gauss(0, 0.02), 0), 1), min(max(y + rng.gauss(0, 0.02), 0), 1))
            for x, y in points
        ]
        changes = {}
        for n in (4, 64):
            grid = GridIndex(n)
            for i, p in enumerate(points):
                grid.insert(i, p)
            for i, p in enumerate(steps):
                grid.move(i, p)
            changes[n] = grid.cell_changes
        assert changes[64] > changes[4]

    def test_reset_counters(self):
        grid = GridIndex(4)
        grid.insert(1, (0.1, 0.1))
        grid.move(1, (0.9, 0.9))
        grid.reset_counters()
        assert grid.cell_changes == 0
        assert grid.updates == 0


class TestCategories:
    def test_category_filtering(self):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.1), "A")
        grid.insert(2, (0.1, 0.12), "B")
        grid.insert(3, (0.9, 0.9), "A")
        assert sorted(grid.objects("A")) == [1, 3]
        assert sorted(grid.objects("B")) == [2]
        assert grid.count("A") == 2
        assert grid.count() == 3

    def test_objects_in_cell_by_category(self):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.1), "A")
        grid.insert(2, (0.11, 0.11), "B")
        key = grid.cell_of(1)
        assert set(grid.objects_in_cell(key)) == {1, 2}
        assert set(grid.objects_in_cell(key, "A")) == {1}
        assert grid.cell_population(key) == 2
        assert grid.cell_population(key, "B") == 1

    def test_move_preserves_category(self):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.1), "A")
        grid.move(1, (0.9, 0.9))
        assert grid.category(1) == "A"
        assert 1 in set(grid.objects_in_cell(grid.cell_of(1), "A"))

    def test_positions_snapshot(self):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.2), "A")
        grid.insert(2, (0.3, 0.4), "B")
        assert grid.positions_snapshot() == {1: (0.1, 0.2), 2: (0.3, 0.4)}
        assert grid.positions_snapshot("A") == {1: (0.1, 0.2)}


class TestCustomExtent:
    def test_non_unit_extent(self):
        grid = GridIndex(10, extent=Rect(0.0, 0.0, 100.0, 100.0))
        grid.insert(1, (55.0, 5.0))
        assert grid.cell_of(1) == (5, 0)
        rect = grid.cell_rect((5, 0))
        assert rect.contains((55.0, 5.0))

    def test_cell_key_matches_insert(self):
        grid = GridIndex(7, extent=Rect(-1.0, -1.0, 1.0, 1.0))
        grid.insert(1, (0.0, 0.0))
        assert grid.cell_key((0.0, 0.0)) == grid.cell_of(1)
