"""Unit and property tests for the Section 6 cost model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost_model import (
    CostModelParams,
    accumulated_series,
    crnn_cost,
    igern_beats_crnn,
    igern_beats_tpl,
    igern_beats_voronoi,
    igern_bi_cost,
    igern_mono_cost,
    per_tick_series,
    tpl_cost,
    voronoi_cost,
)

pos = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
ticks = st.integers(min_value=2, max_value=200)
r_vals = st.floats(min_value=1.0, max_value=6.0, allow_nan=False)


class TestParams:
    def test_invalid_ticks(self):
        with pytest.raises(ValueError):
            CostModelParams(ticks=0)

    def test_scalar_broadcast(self):
        p = CostModelParams(ticks=5, nn=(2.0,))
        assert p.nn == [2.0] * 5

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            CostModelParams(ticks=5, nn=[1.0, 2.0])

    def test_per_tick_series_kept(self):
        p = CostModelParams(ticks=3, r=[1.0, 2.0, 3.0])
        assert p.r == [1.0, 2.0, 3.0]


class TestFormulas:
    def test_single_tick_mono_equals_tpl(self):
        """The paper: the IGERN/TPL ratio is one at T = 1."""
        p = CostModelParams(ticks=1, r=(3.0,))
        assert math.isclose(igern_mono_cost(p), tpl_cost(p))

    def test_single_tick_bi_equals_voronoi(self):
        p = CostModelParams(ticks=1)
        assert math.isclose(igern_bi_cost(p), voronoi_cost(p))

    def test_crnn_charges_six_everything(self):
        p = CostModelParams(ticks=1, nn=(1.0,), nn_c=(1.0,))
        assert math.isclose(crnn_cost(p), 12.0)

    def test_known_values(self):
        p = CostModelParams(
            ticks=2, nn=(1.0,), nn_c=(2.0,), nn_b=(0.5,), r=(3.0,), a=(4.0,), b=(2.0,)
        )
        # t0: 3*(2+1)=9; t1: 0.5 + 3*1 = 3.5
        assert math.isclose(igern_mono_cost(p), 12.5)
        # t0: 6*3=18; t1: 6*(0.5+1)=9
        assert math.isclose(crnn_cost(p), 27.0)
        # both ticks: 3*(2+1)=9 -> 18
        assert math.isclose(tpl_cost(p), 18.0)
        # t0: 4*2 + 2*1 = 10; t1: 0.5 + 2*1 = 2.5
        assert math.isclose(igern_bi_cost(p), 12.5)
        # both ticks: 4*2+2*1 = 10 -> 20
        assert math.isclose(voronoi_cost(p), 20.0)


class TestSeries:
    def test_per_tick_sums_to_totals(self):
        p = CostModelParams(ticks=30)
        series = per_tick_series(p)
        assert math.isclose(sum(series["igern_mono"]), igern_mono_cost(p))
        assert math.isclose(sum(series["crnn"]), crnn_cost(p))
        assert math.isclose(sum(series["tpl"]), tpl_cost(p))
        assert math.isclose(sum(series["igern_bi"]), igern_bi_cost(p))
        assert math.isclose(sum(series["voronoi"]), voronoi_cost(p))

    def test_accumulated_monotone_and_final(self):
        p = CostModelParams(ticks=20)
        acc = accumulated_series(p)
        for name, series in acc.items():
            assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))
        assert math.isclose(acc["igern_mono"][-1], igern_mono_cost(p))

    def test_model_reproduces_widening_gap(self):
        """Figure 7b's shape falls straight out of the closed form."""
        p = CostModelParams(ticks=50, nn_b=(0.25,), r=(3.5,))
        acc = accumulated_series(p)
        gaps = [c - i for i, c in zip(acc["igern_mono"], acc["crnn"])]
        assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))

    def test_model_reproduces_fig9a_crossover(self):
        """At t=0 the bi costs coincide (IGERN initial == Voronoi build);
        for t>0 IGERN's per-tick cost drops below Voronoi's."""
        p = CostModelParams(ticks=10, nn_b=(0.5,), a=(6.0,), b=(2.0,))
        series = per_tick_series(p)
        assert math.isclose(series["igern_bi"][0], series["voronoi"][0])
        for t in range(1, 10):
            assert series["igern_bi"][t] < series["voronoi"][t]


class TestDominanceClaims:
    """The paper's Section 6 dominance statements, checked mechanically."""

    @given(ticks, pos, pos, r_vals)
    @settings(max_examples=100)
    def test_igern_beats_crnn_when_r_at_most_six(self, t, nn, nn_c, r):
        # CRNN's bounded search runs six times vs once, provided the
        # bounded search is not more expensive than the six of CRNN's.
        p = CostModelParams(
            ticks=t, nn=(nn,), nn_c=(nn_c,), nn_b=(min(nn, nn_c) * 0.5,), r=(r,)
        )
        assert igern_beats_crnn(p)

    @given(ticks, pos, pos, r_vals)
    @settings(max_examples=100)
    def test_igern_beats_tpl_when_bounded_cheaper(self, t, nn, nn_c, r):
        # The paper: NN_b is much cheaper than r_t * NN_c, hence dominance.
        p = CostModelParams(
            ticks=t, nn=(nn,), nn_c=(nn_c,), nn_b=(nn_c * 0.9,), r=(max(r, 1.0),)
        )
        assert igern_beats_tpl(p)

    @given(ticks, pos, pos, pos, st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=100)
    def test_igern_beats_voronoi_when_bounded_cheaper(self, t, nn, nn_c, b, a):
        p = CostModelParams(
            ticks=t, nn=(nn,), nn_c=(nn_c,), nn_b=(nn_c * a * 0.99,), a=(a,), b=(b,)
        )
        assert igern_beats_voronoi(p)

    def test_ratio_grows_with_horizon(self):
        """The accumulated gap (Figures 7b/9b) widens over time."""
        base = dict(nn=(1.0,), nn_c=(1.0,), nn_b=(0.25,), r=(3.5,))
        short = CostModelParams(ticks=5, **base)
        long = CostModelParams(ticks=100, **base)
        assert (crnn_cost(long) - igern_mono_cost(long)) > (
            crnn_cost(short) - igern_mono_cost(short)
        )
