"""Unit tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean, percentile, running_sum, stdev, summarize

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestMeanStdev:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_stdev_constant_is_zero(self):
        assert stdev([4.0, 4.0, 4.0]) == 0.0

    def test_stdev_short(self):
        assert stdev([1.0]) == 0.0

    def test_stdev_known(self):
        assert math.isclose(stdev([2.0, 4.0]), 1.0)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_invalid_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    @given(floats)
    @settings(max_examples=50)
    def test_monotone_in_pct(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestRunningSum:
    def test_values(self):
        assert running_sum([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]

    def test_empty(self):
        assert running_sum([]) == []

    @given(floats)
    @settings(max_examples=50)
    def test_last_is_total(self, values):
        assert math.isclose(running_sum(values)[-1], sum(values), rel_tol=1e-9, abs_tol=1e-6)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["mean"] == 0.0 and s["max"] == 0.0

    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert s["median"] == 2.5
        assert s["min"] <= s["p95"] <= s["max"]
