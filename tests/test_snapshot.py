"""Tests for the one-shot snapshot query API."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.brute import brute_bi_rnn, brute_mono_rnn
from repro.snapshot import bi_rnn, influence_set, mono_rnn

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
point = st.tuples(unit, unit)
point_lists = st.lists(point, min_size=0, max_size=30)


class TestMonoSnapshot:
    def test_empty(self):
        assert mono_rnn({}, (0.5, 0.5)) == set()

    def test_doc_example(self):
        assert sorted(mono_rnn({1: (0.2, 0.2), 2: (0.8, 0.8)}, (0.5, 0.5))) == [1, 2]

    def test_arbitrary_coordinate_scale(self):
        """Snapshot queries work on any coordinate system, not just the
        unit square (the extent is derived from the data)."""
        positions = {1: (1200.0, 3400.0), 2: (1300.0, 3400.0), 3: (9000.0, 9000.0)}
        q = (1250.0, 3380.0)
        assert mono_rnn(positions, q) == brute_mono_rnn(positions, q)

    def test_negative_coordinates(self):
        positions = {1: (-5.0, -5.0), 2: (-4.0, -5.0)}
        q = (-4.5, -4.0)
        assert mono_rnn(positions, q) == brute_mono_rnn(positions, q)

    @given(point_lists, point, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60)
    def test_matches_brute(self, pts, q, k):
        positions = {i: p for i, p in enumerate(pts)}
        assert mono_rnn(positions, q, k=k) == brute_mono_rnn(positions, q, k=k)

    def test_influence_set_alias(self):
        positions = {i: (random.Random(5).random(), 0.5) for i in range(5)}
        assert influence_set(positions, (0.5, 0.5)) == mono_rnn(positions, (0.5, 0.5))


class TestBiSnapshot:
    def test_empty_b(self):
        assert bi_rnn({1: (0.5, 0.5)}, {}, (0.1, 0.1)) == set()

    def test_id_collision_between_types(self):
        # The same id may appear in both categories; answers are B ids.
        a = {1: (0.9, 0.9)}
        b = {1: (0.2, 0.2)}
        assert bi_rnn(a, b, (0.1, 0.1)) == {1}

    @given(point_lists, point_lists, point)
    @settings(max_examples=60)
    def test_matches_brute(self, a_pts, b_pts, q):
        a = {i: p for i, p in enumerate(a_pts)}
        b = {i: p for i, p in enumerate(b_pts)}
        assert bi_rnn(a, b, q) == brute_bi_rnn(a, b, q)

    @given(point_lists, point_lists, point, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_k_matches_brute(self, a_pts, b_pts, q, k):
        a = {i: p for i, p in enumerate(a_pts)}
        b = {i: p for i, p in enumerate(b_pts)}
        assert bi_rnn(a, b, q, k=k) == brute_bi_rnn(a, b, q, k=k)
