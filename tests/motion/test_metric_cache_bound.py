"""The private network-distance cache must stay bounded across ticks.

Regression tests for the unbounded-cache bug: a :class:`NetworkMetric`
without a bound shared tick context memoizes one O(nodes) distance map
per source ever requested, so a long run over a large network converged
on O(nodes**2) resident floats.  The fix bounds it two ways — a hard
entry cap with FIFO eviction, and generational eviction at tick-epoch
boundaries (:meth:`NetworkMetric.observe_grid`, keyed off
``GridIndex.mutations``).  Eviction is a pure memory policy: recomputed
maps are bit-identical, which the lockstep fuzz suite already holds the
metric to.
"""

import pytest

from repro.engine.simulation import Simulator
from repro.grid.index import GridIndex
from repro.metric import PRIVATE_CACHE_MAX, NetworkMetric
from repro.motion.churn import ChurnRandomWalkGenerator
from repro.motion.roadnet import RoadNetwork
from repro.queries import IGERNMonoQuery, QueryPosition


def test_private_cache_respects_hard_cap():
    # 20x20 grid city: 400 nodes, comfortably above the default cap.
    net = RoadNetwork.grid_city(rows=20, cols=20, seed=3)
    metric = NetworkMetric(net)
    assert len(net.nodes) > PRIVATE_CACHE_MAX
    for source in net.nodes:
        metric.node_distances(source)
    assert len(metric._cache) <= PRIVATE_CACHE_MAX


def test_private_cache_cap_override_validates():
    net = RoadNetwork.grid_city(rows=2, cols=2, seed=0)
    with pytest.raises(ValueError):
        NetworkMetric(net, cache_cap=0)


def test_epoch_change_evicts_untouched_sources():
    net = RoadNetwork.grid_city(rows=4, cols=4, seed=1)
    metric = NetworkMetric(net)
    grid = GridIndex(4)
    grid.insert("a", (0.5, 0.5))
    metric.observe_grid(grid)
    first_six = list(net.nodes[:6])
    straggler = net.nodes[6]
    for source in first_six:
        metric.node_distances(source)
    assert len(metric._cache) == 6

    # Epoch boundary: everything was touched last epoch, so all survive.
    grid.move("a", (0.6, 0.6))
    metric.observe_grid(grid)
    assert len(metric._cache) == 6

    # Only the straggler is touched this epoch; the next boundary drops
    # the first six.
    metric.node_distances(straggler)
    grid.move("a", (0.7, 0.7))
    metric.observe_grid(grid)
    assert set(metric._cache) == {straggler}

    # Same stamp again: no further eviction.
    metric.observe_grid(grid)
    assert set(metric._cache) == {straggler}


def test_evicted_sources_recompute_identically():
    net = RoadNetwork.grid_city(rows=5, cols=5, seed=2)
    metric = NetworkMetric(net, cache_cap=2)
    a, b, c = net.nodes[0], net.nodes[1], net.nodes[2]
    first = dict(metric.node_distances(a))
    metric.node_distances(b)
    metric.node_distances(c)  # evicts the first source
    assert a not in metric._cache
    assert metric.node_distances(a) == first


def test_cache_pinned_over_long_churn_run():
    """End to end: a scheduler-off network simulator over heavy churn
    holds its private cache at the per-epoch working set, not at one
    entry per source node ever touched."""
    net = RoadNetwork.grid_city(rows=6, cols=6, seed=9)
    generator = ChurnRandomWalkGenerator(
        24, seed=5, step_sigma=0.05, birth_rate=0.3, death_rate=0.3
    )
    sim = Simulator(generator, grid_size=8, scheduler=False, flight=False)
    metric = NetworkMetric(net, cache_cap=16)
    sim.add_query(
        "net",
        IGERNMonoQuery(
            sim.grid,
            QueryPosition(sim.grid, fixed=(0.5, 0.5)),
            metric=metric,
        ),
    )
    high_water = 0
    sim.run(0)
    for _ in range(30):
        sim.step()
        high_water = max(high_water, len(metric._cache))
    # One epoch's working set plus the carried previous epoch, never the
    # cumulative union of 30 ticks of churn positions.
    assert high_water <= 2 * 16
