"""Tests for the clustered (skewed) workload generator."""

import math

import pytest

from repro.engine.simulation import Simulator
from repro.motion.clusters import GaussianClusterGenerator
from repro.queries import BruteForceMonoQuery, IGERNMonoQuery, QueryPosition


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianClusterGenerator(0)
        with pytest.raises(ValueError):
            GaussianClusterGenerator(10, n_clusters=0)
        with pytest.raises(ValueError):
            GaussianClusterGenerator(10, member_sigma=-1.0)

    def test_initial_positions_in_extent(self):
        gen = GaussianClusterGenerator(200, seed=1)
        for _, pos, _ in gen.initial():
            assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_objects_cluster_around_centers(self):
        gen = GaussianClusterGenerator(400, n_clusters=3, seed=2, cluster_sigma=0.03)
        centers = gen.cluster_centers()
        near = 0
        for oid in gen.object_ids():
            pos = gen.position(oid)
            d = min(math.hypot(pos.x - c.x, pos.y - c.y) for c in centers)
            if d < 0.12:  # 4 sigma
                near += 1
        assert near > 380  # almost everyone sits in a hotspot

    def test_skew_vs_uniform(self):
        """Cluster workloads concentrate far more objects per cell than a
        uniform placement would."""
        from repro.grid.index import GridIndex

        gen = GaussianClusterGenerator(500, n_clusters=2, seed=3, cluster_sigma=0.04)
        grid = GridIndex(16)
        for oid, pos, cat in gen.initial():
            grid.insert(oid, pos, cat)
        max_cell = max(
            grid.cell_population(key) for key in grid.occupied_cells()
        )
        assert max_cell > 500 / 256 * 5  # >5x the uniform expectation

    def test_categories(self):
        gen = GaussianClusterGenerator(100, seed=4, categories={"A": 1, "B": 1})
        cats = {c for _, _, c in gen.initial()}
        assert cats == {"A", "B"}


class TestStepping:
    def test_everyone_moves(self):
        gen = GaussianClusterGenerator(100, seed=5)
        assert len(gen.step()) == 100

    def test_positions_stay_in_extent(self):
        gen = GaussianClusterGenerator(150, seed=6, drift_sigma=0.05)
        for _ in range(30):
            for _, pos in gen.step():
                assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_centers_drift(self):
        gen = GaussianClusterGenerator(50, seed=7, drift_sigma=0.02)
        before = gen.cluster_centers()
        for _ in range(20):
            gen.step()
        after = gen.cluster_centers()
        assert any(
            math.hypot(a.x - b.x, a.y - b.y) > 0.01 for a, b in zip(before, after)
        )

    def test_deterministic(self):
        a = GaussianClusterGenerator(40, seed=8)
        b = GaussianClusterGenerator(40, seed=8)
        assert a.step() == b.step()


class TestAlgorithmsUnderSkew:
    def test_igern_exact_on_clustered_data(self):
        gen = GaussianClusterGenerator(400, n_clusters=3, seed=9, cluster_sigma=0.04)
        sim = Simulator(gen, grid_size=24)
        pos = QueryPosition(sim.grid, fixed=(0.5, 0.5))
        sim.add_query("igern", IGERNMonoQuery(sim.grid, pos))
        sim.add_query(
            "brute",
            BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5))),
        )
        result = sim.run(12)
        for t in range(13):
            assert result["igern"].ticks[t].answer == result["brute"].ticks[t].answer
