"""Unit tests for repro.motion.trace.Trace."""

import pytest

from repro.motion.trace import Trace
from repro.motion.uniform import RandomWalkGenerator


class TestRecord:
    def test_record_shape(self):
        gen = RandomWalkGenerator(25, seed=1)
        trace = Trace.record(gen, 10)
        assert trace.n_objects == 25
        assert len(trace) == 10

    def test_negative_ticks_raise(self):
        gen = RandomWalkGenerator(5, seed=1)
        with pytest.raises(ValueError):
            Trace.record(gen, -1)

    def test_record_zero_ticks(self):
        gen = RandomWalkGenerator(5, seed=1)
        trace = Trace.record(gen, 0)
        assert len(trace) == 0
        assert trace.n_objects == 5


class TestReplay:
    def test_replay_matches_recording(self):
        gen = RandomWalkGenerator(15, seed=2)
        trace = Trace.record(gen, 8)
        replay = trace.replay()
        assert replay.initial() == trace.initial
        for t in range(8):
            assert replay.step() == trace.ticks[t]

    def test_replay_exhaustion_raises(self):
        trace = Trace.record(RandomWalkGenerator(3, seed=3), 2)
        replay = trace.replay()
        replay.initial()
        replay.step()
        replay.step()
        with pytest.raises(StopIteration):
            replay.step()

    def test_two_replays_are_independent(self):
        trace = Trace.record(RandomWalkGenerator(3, seed=4), 3)
        r1, r2 = trace.replay(), trace.replay()
        assert r1.step() == r2.step()


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        gen = RandomWalkGenerator(12, seed=5, categories={"A": 1, "B": 1})
        trace = Trace.record(gen, 6)
        path = tmp_path / "trace.csv"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.n_objects == trace.n_objects
        assert len(loaded) == len(trace)
        assert loaded.initial == trace.initial
        assert loaded.ticks == trace.ticks

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("not,a,trace\n1,2,3\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_string_ids_roundtrip(self, tmp_path):
        from repro.geometry.point import Point

        trace = Trace(
            [("car-1", Point(0.5, 0.5), "A")],
            [[("car-1", Point(0.6, 0.5))]],
        )
        path = tmp_path / "trace.csv"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.initial[0][0] == "car-1"
        assert loaded.initial[0][2] == "A"
