"""Unit tests for the unconstrained motion generators."""

import pytest

from repro.geometry.rectangle import Rect
from repro.motion.uniform import RandomWalkGenerator, UniformJumpGenerator


class TestUniformJump:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformJumpGenerator(0)
        with pytest.raises(ValueError):
            UniformJumpGenerator(10, jump_prob=1.5)

    def test_initial_inside_extent(self):
        gen = UniformJumpGenerator(100, seed=1)
        for _, pos, _ in gen.initial():
            assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_jump_probability_controls_volume(self):
        lazy = UniformJumpGenerator(500, seed=2, jump_prob=0.1)
        eager = UniformJumpGenerator(500, seed=2, jump_prob=0.9)
        assert len(lazy.step()) < len(eager.step())

    def test_zero_prob_never_moves(self):
        gen = UniformJumpGenerator(50, seed=3, jump_prob=0.0)
        assert gen.step() == []

    def test_custom_extent(self):
        extent = Rect(10.0, 10.0, 20.0, 20.0)
        gen = UniformJumpGenerator(50, seed=4, jump_prob=1.0, extent=extent)
        for _, pos in gen.step():
            assert extent.contains(pos)

    def test_categories(self):
        gen = UniformJumpGenerator(100, seed=5, categories={"A": 1, "B": 3})
        cats = [c for _, _, c in gen.initial()]
        assert cats.count("B") > cats.count("A")


class TestRandomWalk:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            RandomWalkGenerator(10, step_sigma=0.0)

    def test_all_objects_move_each_tick(self):
        gen = RandomWalkGenerator(80, seed=6)
        assert len(gen.step()) == 80

    def test_positions_reflected_into_extent(self):
        gen = RandomWalkGenerator(100, seed=7, step_sigma=0.2)
        for _ in range(20):
            for _, pos in gen.step():
                assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_small_sigma_small_steps(self):
        gen = RandomWalkGenerator(50, seed=8, step_sigma=0.001)
        before = {oid: pos for oid, pos, _ in gen.initial()}
        for oid, pos in gen.step():
            assert before[oid].distance_to(pos) < 0.01

    def test_deterministic(self):
        a = RandomWalkGenerator(20, seed=9)
        b = RandomWalkGenerator(20, seed=9)
        assert a.step() == b.step()
