"""Tests for the radial-city builder and road network persistence."""

import math

import networkx as nx
import pytest

from repro.motion.generator import NetworkMovingObjectGenerator
from repro.motion.roadnet import RoadNetwork


class TestRadialCity:
    def test_structure(self):
        net = RoadNetwork.radial_city(rings=4, spokes=8, seed=1)
        assert len(net) == 1 + 4 * 8
        assert nx.is_connected(net.graph)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RoadNetwork.radial_city(rings=0)
        with pytest.raises(ValueError):
            RoadNetwork.radial_city(spokes=2)

    def test_in_unit_square(self):
        net = RoadNetwork.radial_city(rings=6, spokes=12, seed=2)
        for node in net.nodes:
            p = net.node_pos(node)
            assert 0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0

    def test_center_is_hub(self):
        net = RoadNetwork.radial_city(rings=3, spokes=6, seed=3, jitter=0.0)
        # The central node connects to every first-ring spoke.
        assert len(net.neighbors(0)) == 6

    def test_drives_generator(self):
        net = RoadNetwork.radial_city(rings=4, spokes=10, seed=4)
        gen = NetworkMovingObjectGenerator(net, 40, seed=5)
        for _ in range(20):
            for _, pos in gen.step():
                assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        net = RoadNetwork.grid_city(rows=5, cols=5, seed=6)
        path = tmp_path / "net.csv"
        net.save(path)
        loaded = RoadNetwork.load(path)
        assert set(loaded.nodes) == set(net.nodes)
        for node in net.nodes:
            assert loaded.node_pos(node) == net.node_pos(node)
        original = sorted((min(u, v), max(u, v)) for u, v, _ in net.edges())
        restored = sorted((min(u, v), max(u, v)) for u, v, _ in loaded.edges())
        assert original == restored

    def test_edge_lengths_preserved(self, tmp_path):
        net = RoadNetwork.delaunay(n_nodes=30, seed=7)
        path = tmp_path / "net.csv"
        net.save(path)
        loaded = RoadNetwork.load(path)
        for u, v, length in net.edges():
            assert math.isclose(loaded.edge_length(u, v), length)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            RoadNetwork.load(path)

    def test_load_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record,a,b,c\nnode,0,0.1,0.2\nnode,1,0.5,0.5\nedge,0,1,\nwormhole,0,1,\n")
        with pytest.raises(ValueError):
            RoadNetwork.load(path)
