"""Unit tests for the churn generator and churn-driven simulation."""

import pytest

from repro.engine.simulation import Simulator
from repro.motion.churn import ChurnRandomWalkGenerator
from repro.queries import (
    BruteForceBiQuery,
    BruteForceMonoQuery,
    IGERNBiQuery,
    IGERNMonoQuery,
    QueryPosition,
)


class TestChurnGenerator:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ChurnRandomWalkGenerator(0)
        with pytest.raises(ValueError):
            ChurnRandomWalkGenerator(10, step_sigma=0.0)
        with pytest.raises(ValueError):
            ChurnRandomWalkGenerator(10, birth_rate=-0.1)

    def test_plain_step_rejected(self):
        gen = ChurnRandomWalkGenerator(10, seed=1)
        with pytest.raises(TypeError):
            gen.step()

    def test_events_are_consistent(self):
        gen = ChurnRandomWalkGenerator(50, seed=2, birth_rate=0.1, death_rate=0.1)
        live = {oid for oid, _, _ in gen.initial()}
        for _ in range(30):
            ev = gen.step_events()
            for oid in ev.removes:
                assert oid in live
                live.discard(oid)
            for oid, _, _ in ev.inserts:
                assert oid not in live  # fresh ids, never recycled
                live.add(oid)
            for oid, _ in ev.moves:
                assert oid in live
            assert live == set(gen.object_ids())

    def test_population_floor(self):
        gen = ChurnRandomWalkGenerator(
            5, seed=3, birth_rate=0.0, death_rate=1.0, min_population=3
        )
        for _ in range(10):
            gen.step_events()
        assert gen.population == 3

    def test_balanced_rates_keep_population_stable(self):
        gen = ChurnRandomWalkGenerator(100, seed=4, birth_rate=0.05, death_rate=0.05)
        for _ in range(50):
            gen.step_events()
        assert 50 < gen.population < 200

    def test_categories(self):
        gen = ChurnRandomWalkGenerator(
            80, seed=5, categories={"A": 1.0, "B": 1.0}
        )
        cats = {c for _, _, c in gen.initial()}
        assert cats == {"A", "B"}


class TestChurnSimulation:
    def test_grid_tracks_population(self):
        gen = ChurnRandomWalkGenerator(60, seed=6, birth_rate=0.1, death_rate=0.1)
        sim = Simulator(gen, grid_size=16)
        sim.run(20)
        assert len(sim.grid) == gen.population

    def test_mono_igern_correct_under_churn(self):
        """Failure injection: candidates and answers may vanish any tick."""
        gen = ChurnRandomWalkGenerator(
            120, seed=7, birth_rate=0.15, death_rate=0.15, step_sigma=0.03
        )
        sim = Simulator(gen, grid_size=16)
        pos = QueryPosition(sim.grid, fixed=(0.5, 0.5))
        sim.add_query("igern", IGERNMonoQuery(sim.grid, pos))
        sim.add_query(
            "brute", BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        result = sim.run(25)
        for t in range(26):
            assert (
                result["igern"].ticks[t].answer == result["brute"].ticks[t].answer
            ), f"diverged at tick {t}"

    def test_bi_igern_correct_under_churn(self):
        gen = ChurnRandomWalkGenerator(
            120,
            seed=8,
            birth_rate=0.15,
            death_rate=0.15,
            step_sigma=0.03,
            categories={"A": 1.0, "B": 2.0},
        )
        sim = Simulator(gen, grid_size=16)
        pos = QueryPosition(sim.grid, fixed=(0.5, 0.5))
        sim.add_query("igern", IGERNBiQuery(sim.grid, pos))
        sim.add_query(
            "brute", BruteForceBiQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        )
        result = sim.run(25)
        for t in range(26):
            assert (
                result["igern"].ticks[t].answer == result["brute"].ticks[t].answer
            ), f"diverged at tick {t}"
