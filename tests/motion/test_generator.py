"""Unit tests for the Brinkhoff-style network generator."""

import math

import pytest

from repro.geometry.point import dist
from repro.motion.generator import NetworkMovingObjectGenerator
from repro.motion.roadnet import RoadNetwork


@pytest.fixture(scope="module")
def network():
    return RoadNetwork.grid_city(rows=8, cols=8, seed=0)


class TestConstruction:
    def test_invalid_params(self, network):
        with pytest.raises(ValueError):
            NetworkMovingObjectGenerator(network, 0)
        with pytest.raises(ValueError):
            NetworkMovingObjectGenerator(network, 10, policy="teleport")
        with pytest.raises(ValueError):
            NetworkMovingObjectGenerator(network, 10, speed_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            NetworkMovingObjectGenerator(network, 10, move_fraction=0.0)

    def test_initial_positions_on_network(self, network):
        gen = NetworkMovingObjectGenerator(network, 50, seed=1)
        initial = gen.initial()
        assert len(initial) == 50
        for oid, pos, category in initial:
            assert category == 0
            assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_categories_assigned(self, network):
        gen = NetworkMovingObjectGenerator(
            network, 200, seed=2, categories={"A": 0.5, "B": 0.5}
        )
        cats = {category for _, _, category in gen.initial()}
        assert cats == {"A", "B"}

    def test_deterministic_with_seed(self, network):
        a = NetworkMovingObjectGenerator(network, 20, seed=5)
        b = NetworkMovingObjectGenerator(network, 20, seed=5)
        assert a.initial() == b.initial()
        assert a.step() == b.step()


class TestStepping:
    def test_every_object_moves_by_default(self, network):
        gen = NetworkMovingObjectGenerator(network, 30, seed=3)
        updates = gen.step()
        assert len(updates) == 30

    def test_move_fraction_reduces_updates(self, network):
        gen = NetworkMovingObjectGenerator(network, 200, seed=3, move_fraction=0.3)
        n = len(gen.step())
        assert 20 < n < 120

    def test_displacement_bounded_by_speed(self, network):
        speed_hi = 0.01
        gen = NetworkMovingObjectGenerator(
            network, 40, seed=4, speed_range=(0.005, speed_hi)
        )
        before = {oid: pos for oid, pos, _ in gen.initial()}
        for oid, pos in gen.step(dt=1.0):
            # Straight-line displacement can't exceed path distance.
            assert dist(before[oid], pos) <= speed_hi + 1e-9

    def test_positions_stay_on_map(self, network):
        gen = NetworkMovingObjectGenerator(network, 30, seed=6)
        for _ in range(50):
            for _, pos in gen.step():
                assert 0.0 <= pos.x <= 1.0 and 0.0 <= pos.y <= 1.0

    def test_objects_actually_travel(self, network):
        gen = NetworkMovingObjectGenerator(network, 20, seed=7, speed_range=(0.01, 0.02))
        start = {oid: pos for oid, pos, _ in gen.initial()}
        for _ in range(40):
            updates = gen.step()
        moved = sum(1 for oid, pos in updates if dist(start[oid], pos) > 0.02)
        assert moved > 10  # most objects have gone somewhere

    def test_shortest_path_policy(self, network):
        gen = NetworkMovingObjectGenerator(
            network, 15, seed=8, policy="shortest_path"
        )
        for _ in range(30):
            updates = gen.step()
        assert len(updates) == 15

    def test_dt_scales_displacement(self, network):
        gen1 = NetworkMovingObjectGenerator(network, 10, seed=9)
        gen2 = NetworkMovingObjectGenerator(network, 10, seed=9)
        before = {oid: pos for oid, pos, _ in gen1.initial()}
        small = {oid: pos for oid, pos in gen1.step(dt=0.1)}
        large = {oid: pos for oid, pos in gen2.step(dt=1.0)}
        small_total = sum(dist(before[o], small[o]) for o in small)
        large_total = sum(dist(before[o], large[o]) for o in large)
        assert small_total < large_total

    def test_accessors(self, network):
        gen = NetworkMovingObjectGenerator(network, 5, seed=10)
        ids = gen.object_ids()
        assert len(ids) == 5
        for oid in ids:
            pos = gen.position(oid)
            assert 0.0 <= pos.x <= 1.0
            assert gen.category(oid) == 0
