"""Unit tests for repro.motion.roadnet.RoadNetwork."""

import math
import random

import pytest

from repro.motion.roadnet import RoadNetwork


class TestConstruction:
    def test_manual_network(self):
        net = RoadNetwork(
            {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 1.0)},
            [(0, 1), (1, 2)],
        )
        assert len(net) == 3
        assert math.isclose(net.edge_length(0, 1), 1.0)
        assert math.isclose(net.edge_length(1, 2), 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork({}, [])

    def test_no_edges_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork({0: (0.0, 0.0)}, [])

    def test_self_loops_dropped(self):
        net = RoadNetwork({0: (0, 0), 1: (1, 0)}, [(0, 0), (0, 1)])
        assert [(u, v) for u, v, _ in net.edges()] in ([(0, 1)], [(1, 0)])

    def test_keeps_largest_component(self):
        net = RoadNetwork(
            {0: (0, 0), 1: (1, 0), 2: (5, 5), 3: (6, 5), 4: (6, 6)},
            [(0, 1), (2, 3), (3, 4)],
        )
        assert set(net.nodes) == {2, 3, 4}


class TestGeometry:
    def test_point_on_edge_interpolates(self):
        net = RoadNetwork({0: (0.0, 0.0), 1: (1.0, 0.0)}, [(0, 1)])
        p = net.point_on_edge(0, 1, 0.25)
        assert math.isclose(p.x, 0.25) and p.y == 0.0

    def test_point_on_edge_clamps_offset(self):
        net = RoadNetwork({0: (0.0, 0.0), 1: (1.0, 0.0)}, [(0, 1)])
        assert net.point_on_edge(0, 1, 5.0).x == 1.0
        assert net.point_on_edge(0, 1, -1.0).x == 0.0

    def test_neighbors(self):
        net = RoadNetwork(
            {0: (0, 0), 1: (1, 0), 2: (0, 1)}, [(0, 1), (0, 2)]
        )
        nbrs = dict(net.neighbors(0))
        assert set(nbrs) == {1, 2}

    def test_shortest_path(self):
        net = RoadNetwork(
            {0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (1, 5)},
            [(0, 1), (1, 2), (0, 3), (3, 2)],
        )
        assert net.shortest_path(0, 2) == [0, 1, 2]

    def test_random_node_is_valid(self):
        net = RoadNetwork.grid_city(rows=4, cols=4, seed=1)
        rng = random.Random(0)
        for _ in range(20):
            assert net.random_node(rng) in set(net.nodes)


class TestBuilders:
    def test_grid_city_in_unit_square(self):
        net = RoadNetwork.grid_city(rows=8, cols=8, seed=3)
        assert len(net) == 64
        for node in net.nodes:
            p = net.node_pos(node)
            assert 0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0

    def test_grid_city_connected(self):
        import networkx as nx

        net = RoadNetwork.grid_city(rows=6, cols=6, seed=5)
        assert nx.is_connected(net.graph)

    def test_grid_city_too_small_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork.grid_city(rows=1, cols=5)

    def test_grid_city_deterministic(self):
        a = RoadNetwork.grid_city(seed=7)
        b = RoadNetwork.grid_city(seed=7)
        assert list(a.edges()) == list(b.edges())

    def test_delaunay_in_unit_square(self):
        net = RoadNetwork.delaunay(n_nodes=50, seed=2)
        for node in net.nodes:
            p = net.node_pos(node)
            assert 0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0

    def test_delaunay_connected(self):
        import networkx as nx

        net = RoadNetwork.delaunay(n_nodes=40, seed=6)
        assert nx.is_connected(net.graph)

    def test_delaunay_too_small_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork.delaunay(n_nodes=3)
