"""Property suite for the road-network distance spec and Dijkstra kernel.

This file pins the assumptions the network-metric mode's differential
story rests on:

1. the engine's hand-rolled lazy-deletion Dijkstra kernel
   (``NetworkMetric.compute_distances``) is **bit-identical** to
   ``networkx.single_source_dijkstra_path_length`` on every source of
   every test network — both are left folds ``dist[u] + w`` over
   non-negative weights, so the minimum over relaxation orders equals
   the minimum over paths;
2. flipping the relaxation comparison from ``<`` to ``<=`` leaves every
   distance bit-identical (equal sums overwrite equal sums) — which is
   why the fuzzer's planted Dijkstra mutants target the *observable*
   stale-entry guard and the strict witness comparison instead;
3. the point-distance spec (:meth:`RoadNetwork.locate` /
   :meth:`RoadNetwork.point_to_point`) behaves like a metric up to
   fold-order rounding, lower-bounds nothing below straight-line
   distance (the property that keeps the Euclidean grid prefilter
   sound), and round-trips on-network points.
"""

import heapq
import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.context import SharedTickContext
from repro.grid.index import GridIndex
from repro.metric import EUCLIDEAN, PREFILTER_PAD, NetworkMetric
from repro.motion.roadnet import RoadNetwork

NETWORKS = {
    "grid-jittered": RoadNetwork.grid_city(rows=5, cols=5, seed=2),
    "grid-exact": RoadNetwork.grid_city(
        rows=4, cols=4, jitter=0.0, diagonal_prob=0.0, seed=0
    ),
    "radial": RoadNetwork.radial_city(rings=3, spokes=6, seed=1),
}

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
points = st.tuples(coords, coords)
network_names = st.sampled_from(sorted(NETWORKS))


def nx_distances(net: RoadNetwork, source: int) -> dict:
    return nx.single_source_dijkstra_path_length(
        net.graph, source, weight="length"
    )


# ----------------------------------------------------------------------
# 1-2. The Dijkstra kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_kernel_bit_identical_to_networkx_every_source(name):
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    for source in net.nodes:
        ours = metric.compute_distances(source)
        theirs = nx_distances(net, source)
        assert ours == theirs, f"source {source} maps differ on {name}"


def leq_compute_distances(net: RoadNetwork, source: int) -> dict:
    """The engine kernel with the relaxation flipped to ``<=``."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if dist[u] < d:
            continue
        for v, w in net.neighbors(u):
            nd = d + w
            if nd <= dist.get(v, math.inf):  # the flipped relaxation
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_relaxation_leq_flip_is_value_preserving(name):
    """``<`` -> ``<=`` in the relaxation cannot change any distance:
    equal left-fold sums overwrite equal sums.  A mutation fuzzer run
    therefore can NOT catch this flip through answers — the planted
    mutants in ``tests/fuzz/test_network_mutation.py`` target the
    stale-entry guard and the witness comparison, which are
    observable."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    for source in net.nodes:
        assert metric.compute_distances(source) == leq_compute_distances(
            net, source
        )


def test_stale_guard_flip_breaks_the_kernel():
    """Sanity for the planted mutant: flipping the *stale-entry guard*
    (``dist[u] < d`` -> ``<=``) discards every queue entry except the
    source's and is observably wrong — unlike the relaxation flip."""
    net = NETWORKS["grid-exact"]

    def mutated(source):
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if dist[u] <= d:  # planted: drops fresh entries too
                continue
            for v, w in net.neighbors(u):
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    source = net.nodes[0]
    assert mutated(source) != NetworkMetric(net).compute_distances(source)


# ----------------------------------------------------------------------
# 3. Point-distance properties
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_identity_at_nodes_is_exactly_zero(name):
    """d(x, x) == 0.0 *exactly* for node positions: the snap spur is
    exactly 0.0 there (the projection residual vanishes bit-for-bit)
    and the same-edge route of equal offsets is 0.0."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    for node in net.nodes:
        p = net.node_pos(node)
        assert metric.distance(p, p) == 0.0


@given(name=network_names, p=points)
def test_identity_on_edge_points_is_rounding_small(name, p):
    """For mid-edge points the re-projection residual is not exactly
    zero (one rounding step), so identity holds to ~1 ulp of the
    coordinates rather than bit-exactly."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    loc = net.locate(p)
    on_net = net.point_on_edge(loc[0], loc[1], loc[2])
    assert metric.distance(on_net, on_net) <= 1e-12


@given(name=network_names, p=points)
def test_identity_off_network_is_twice_the_spur(name, p):
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    spur = net.locate(p)[3]
    assert metric.distance(p, p) == (spur + 0.0) + spur


@given(name=network_names, a=points, b=points)
def test_symmetry_up_to_fold_order(name, a, b):
    """Swapping operands swaps which side sources the Dijkstra maps, so
    the float folds differ in order — values agree to ~1 ulp scale."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    dab = metric.distance(a, b)
    dba = metric.distance(b, a)
    assert dab == pytest.approx(dba, rel=1e-9, abs=1e-12)


@given(name=network_names, a=points, b=points, c=points)
def test_triangle_inequality(name, a, b, c):
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    dac = metric.distance(a, c)
    dab = metric.distance(a, b)
    dbc = metric.distance(b, c)
    assert dac <= (dab + dbc) * (1.0 + 1e-9) + 1e-12


@given(name=network_names, a=points, b=points)
def test_network_distance_dominates_euclidean(name, a, b):
    """The property that keeps grid pruning valid in network mode: the
    straight line lower-bounds the network path, so a padded Euclidean
    ball is a sound superset filter (ISSUE acceptance, ALGORITHM.md)."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    d_net = metric.distance(a, b)
    d_euc = EUCLIDEAN.distance(a, b)
    assert d_euc <= d_net * PREFILTER_PAD
    assert metric.prefilter_radius(d_net) >= d_euc


@given(name=network_names, a=points, b=points)
def test_engine_and_oracle_point_distances_bit_identical(name, a, b):
    """The lockstep's core claim at the smallest grain: the engine's
    memoized kernel and the oracle's networkx maps produce the *same
    bits* through the shared ``point_to_point`` combination."""
    net = NETWORKS[name]
    metric = NetworkMetric(net)
    loc_a, loc_b = net.locate(a), net.locate(b)
    engine = net.point_to_point(loc_a, loc_b, metric.node_distances)
    oracle = net.point_to_point(loc_a, loc_b, lambda s: nx_distances(net, s))
    assert engine == oracle


# ----------------------------------------------------------------------
# Snap round-trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(NETWORKS))
def test_node_positions_snap_with_zero_spur(name):
    net = NETWORKS[name]
    for node in net.nodes:
        u, v, offset, spur = net.locate(net.node_pos(node))
        assert spur == 0.0
        snapped = net.point_on_edge(u, v, offset)
        assert snapped.distance_to(net.node_pos(node)) <= 1e-12


@settings(max_examples=60)
@given(name=network_names, t=st.floats(min_value=0.05, max_value=0.95))
def test_point_on_edge_round_trip(name, t):
    """A point manufactured on an edge snaps back to (that or an equally
    close) edge with ~zero spur, and the snap reconstructs the point."""
    net = NETWORKS[name]
    rng = random.Random(int(t * 1e6))
    edges = net.sorted_edges()
    u, v, length = edges[rng.randrange(len(edges))]
    p = net.point_on_edge(u, v, t * length)
    su, sv, offset, spur = net.locate(p)
    assert spur <= 1e-12
    reconstructed = net.point_on_edge(su, sv, offset)
    assert reconstructed.distance_to(p) <= 1e-9


def test_locate_is_memoized_and_tie_broken_canonically():
    net = NETWORKS["grid-exact"]
    p = net.node_pos(5)  # an interior node: several incident edges tie
    first = net.locate(p)
    assert net.locate((p.x, p.y)) is first  # served from the snap memo
    # Canonical order: the closest edge with the smallest (u, v).
    candidates = [
        (u, v)
        for u, v, _ in net.sorted_edges()
        if 5 in (u, v)
    ]
    assert (first[0], first[1]) == min(candidates)


# ----------------------------------------------------------------------
# Distance-map sharing
# ----------------------------------------------------------------------


def test_private_cache_unbound_and_shared_context_bound():
    net = NETWORKS["grid-jittered"]
    grid = GridIndex(8)
    grid.insert(0, (0.5, 0.5))
    ctx = SharedTickContext(grid)
    ctx.begin_tick()

    metric = NetworkMetric(net)
    source = net.nodes[0]

    # Unbound: second request is a private-cache hit, bit-identical.
    cold = metric.node_distances(source)
    assert metric.node_distances(source) is cold

    # Bound: maps memoize in the tick context, shared across metrics.
    metric.bind_context(ctx)
    other = NetworkMetric(net)
    other.bind_context(ctx)
    shared = other.node_distances(net.nodes[1])
    assert metric.node_distances(net.nodes[1]) is shared
    assert ctx.counters_snapshot()["hits_network"] >= 1

    # A new tick drops the memo: the next request recomputes (a miss),
    # but — networks being immutable — to the very same values.
    ctx.begin_tick()
    before = ctx.counters_snapshot()["misses_network"]
    again = metric.node_distances(net.nodes[1])
    assert again == shared and again is not shared
    assert ctx.counters_snapshot()["misses_network"] == before + 1
