"""Machine-independent performance regression guards.

Wall-clock assertions are flaky; operation counts are not.  These tests
pin the *structural* cost properties the paper's Section 6 analysis
promises, using the shared NN subsystem's counters:

- CRNN performs exactly ``n_pies`` pie searches per tick; IGERN performs
  one bounded scan (plus absorption churn bounded by what actually
  entered the region);
- IGERN's monochromatic verification performs one unconstrained probe per
  monitored candidate; CRNN one per pie candidate;
- the incremental step's operation count does not grow with the time
  horizon (stability, Figures 7/9).
"""

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.grid.search import SearchKind
from repro.queries import CRNNQuery, IGERNMonoQuery, QueryPosition, TPLQuery


@pytest.fixture(scope="module")
def runs():
    spec = WorkloadSpec(n_objects=2000, grid_size=32, seed=71)
    sim = build_simulator(spec)
    qid = central_object(sim)
    queries = {
        "igern": IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid)),
        "crnn": CRNNQuery(sim.grid, QueryPosition(sim.grid, query_id=qid)),
        "tpl": TPLQuery(sim.grid, QueryPosition(sim.grid, query_id=qid)),
    }
    for name, query in queries.items():
        sim.add_query(name, query)
    result = sim.run(20)
    return result, queries


class TestStructuralCosts:
    def test_crnn_runs_six_searches_per_tick(self, runs):
        result, queries = runs
        log = result["crnn"]
        pie_searches = log.total_ops("calls_NN_c") + log.total_ops("calls_NN_b")
        assert pie_searches == 6 * len(log.ticks)

    def test_igern_examines_less_than_crnn(self, runs):
        """The decisive metric is work done (cells visited and objects
        examined), not the number of search calls: at high densities
        IGERN's candidate set can exceed CRNN's fixed six, but each of
        its searches touches a far smaller area."""
        result, _ = runs

        def work(name):
            log = result[name]
            return sum(
                log.total_ops(key)
                for key in (
                    "cells_NN",
                    "cells_NN_c",
                    "cells_NN_b",
                    "objects_NN",
                    "objects_NN_c",
                    "objects_NN_b",
                )
            )

        assert work("igern") < work("crnn")

    def test_igern_fewer_cells_than_tpl(self, runs):
        """The incremental step touches fewer cells than re-running the
        snapshot filter-refine every tick."""
        result, _ = runs

        def cells(name):
            log = result[name]
            return (
                log.total_ops("cells_NN_c")
                + log.total_ops("cells_NN_b")
                + log.total_ops("cells_NN")
            )

        assert cells("igern") < cells("tpl")

    def test_igern_one_bounded_scan_per_tick(self, runs):
        """Per incremental tick: at least one bounded operation, and on
        average only a handful (the region scan plus absorption churn)."""
        result, _ = runs
        log = result["igern"]
        incr = log.ticks[1:]
        bounded = sum(t.ops.get("calls_NN_b", 0) for t in incr)
        assert bounded >= len(incr) * 0.5
        assert bounded <= len(incr) * 6

    def test_verification_probes_bounded_by_monitored(self, runs):
        result, _ = runs
        log = result["igern"]
        for t in log.ticks:
            assert t.ops.get("calls_NN", 0) <= max(t.monitored, 1) + 1

    def test_incremental_ops_stable_over_time(self, runs):
        """No deterioration: the last quarter of ticks does not cost more
        than 4x the first quarter in examined objects."""
        result, _ = runs
        log = result["igern"]
        incr = log.ticks[1:]
        quarter = max(1, len(incr) // 4)

        def objects(ticks):
            return sum(
                t.ops.get("objects_NN", 0)
                + t.ops.get("objects_NN_b", 0)
                + t.ops.get("objects_NN_c", 0)
                for t in ticks
            ) / len(ticks)

        early = objects(incr[:quarter])
        late = objects(incr[-quarter:])
        assert late <= 4.0 * max(early, 1.0)
