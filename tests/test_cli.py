"""Tests for the ``igern`` command-line interface."""

from repro.cli import main


class TestDemo:
    def test_mono_demo_with_check(self, capsys):
        rc = main(["demo", "-n", "200", "--ticks", "3", "--grid", "16", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "monochromatic" in out
        assert "all ticks match brute force" in out

    def test_bi_demo_with_check(self, capsys):
        rc = main(
            ["demo", "--bi", "-n", "200", "--ticks", "3", "--grid", "16", "--check"]
        )
        assert rc == 0
        assert "bichromatic" in capsys.readouterr().out


class TestExperiment:
    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment_with_csv(self, tmp_path, capsys):
        rc = main(
            ["experiment", "fig5", "--scale", "0.05", "--csv", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig5b" in out
        assert (tmp_path / "fig5a.csv").exists()
        assert (tmp_path / "fig5b.csv").exists()

    def test_scalar_experiment(self, capsys):
        rc = main(["experiment", "ablation-pies", "--scale", "0.05"])
        assert rc == 0
        assert "ablation-pies" in capsys.readouterr().out


class TestTrace:
    def test_record_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        rc = main(["trace", str(path), "-n", "30", "--ticks", "5"])
        assert rc == 0
        assert path.exists()
        assert "recorded 30 objects x 5 ticks" in capsys.readouterr().out

        from repro.motion.trace import Trace

        loaded = Trace.load(path)
        assert loaded.n_objects == 30
        assert len(loaded) == 5


class TestObs:
    def test_demo_workload_shows_phases_and_flavors(self, capsys):
        rc = main(["obs", "-n", "300", "--ticks", "3", "--grid", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        # Mono IGERN initial, incremental, and verification phases are
        # separately visible (the acceptance criterion), plus bi phases.
        assert "mono.initial" in out
        assert "mono.incremental" in out
        assert "mono.incremental.verify" in out
        assert "bi.initial" in out
        # All three search flavors appear in the Prometheus snapshot.
        for flavor in ("UNCONSTRAINED", "CONSTRAINED", "BOUNDED"):
            assert f'repro_search_calls_total{{kind="{flavor}"' in out

    def test_obs_on_experiment_workload(self, capsys):
        rc = main(["obs", "--workload", "fig5", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spans (per-phase breakdown" in out
        assert "grid.search." in out

    def test_unknown_workload(self, capsys):
        rc = main(["obs", "--workload", "nope"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_obs_writes_trace_and_metrics_files(self, tmp_path, capsys):
        trace = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.prom"
        rc = main(
            [
                "obs", "-n", "200", "--ticks", "2", "--grid", "16",
                "--trace", str(trace), "--metrics", str(metrics),
            ]
        )
        assert rc == 0
        import json

        lines = trace.read_text().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert "engine.tick" in names
        assert "repro_search_calls_total" in metrics.read_text()

    def test_demo_accepts_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "demo-trace.jsonl"
        rc = main(
            ["demo", "-n", "150", "--ticks", "2", "--grid", "16", "--trace", str(trace)]
        )
        assert rc == 0
        assert trace.exists() and trace.read_text().strip()
        assert str(trace) in capsys.readouterr().out

    def test_experiment_accepts_metrics_flag(self, tmp_path, capsys):
        metrics = tmp_path / "exp.prom"
        rc = main(
            ["experiment", "fig5", "--scale", "0.05", "--metrics", str(metrics)]
        )
        assert rc == 0
        assert "search_calls_total" in metrics.read_text()

    def test_obs_leaves_global_state_disabled(self):
        from repro import obs

        main(["obs", "-n", "150", "--ticks", "1", "--grid", "16"])
        assert obs.enabled() is False
        from repro.obs.metrics import active_registry

        assert active_registry() is None


class TestObsExplain:
    def test_explain_reports_a_query_tick(self, capsys):
        rc = main(
            ["obs", "explain", "igern", "-n", "200", "--ticks", "3",
             "--grid", "16", "--tick", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "query 'igern' tick 2" in out
        assert "tick totals" in out
        assert "attributed" in out

    def test_explain_defaults_to_latest_mention(self, capsys):
        rc = main(
            ["obs", "explain", "igern-bi", "-n", "200", "--ticks", "2",
             "--grid", "16"]
        )
        assert rc == 0
        assert "query 'igern-bi'" in capsys.readouterr().out

    def test_explain_unknown_query_is_helpful_not_fatal(self, capsys):
        rc = main(
            ["obs", "explain", "nope", "-n", "150", "--ticks", "1",
             "--grid", "16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no retained tick mentions" in out
        assert "igern" in out  # lists the known query names

    def test_summary_top_truncates_span_table(self, capsys):
        rc = main(
            ["obs", "-n", "200", "--ticks", "2", "--grid", "16", "--top", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "more span name(s)" in out

    def test_chrome_trace_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "timeline.json"
        rc = main(
            ["obs", "-n", "200", "--ticks", "2", "--grid", "16",
             "--chrome-trace", str(path)]
        )
        assert rc == 0
        assert str(path) in capsys.readouterr().out
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        # Span duration events plus the ledger's counter tracks.
        assert "X" in phases and "C" in phases
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine.tick" in names
        assert "ledger.query_wall_us" in names


class TestBench:
    def _degrade(self, directory):
        """Copies of the committed baselines with a degraded headline
        metric (speedup where one is gated, tick latency for serving,
        lease hold rates otherwise)."""
        import json
        import shutil

        from repro.bench import BENCHMARKS, REPO_ROOT

        directory.mkdir(parents=True, exist_ok=True)
        for bench in BENCHMARKS.values():
            target = directory / bench.result_file
            shutil.copy(REPO_ROOT / bench.result_file, target)
            doc = json.loads(target.read_text())
            if "speedup" in doc:
                doc["speedup"] = doc["speedup"] / 2.0
            elif "serving" in doc:
                doc["serving"]["p99_tick_seconds"] *= 4.0
                doc["serving"]["p50_tick_seconds"] *= 4.0
            else:
                doc["leases"]["hold_ratio"] /= 2.0
                doc["publications"]["skip_rate"] /= 2.0
            target.write_text(json.dumps(doc))
        return directory

    def _committed(self, directory):
        import shutil

        from repro.bench import BENCHMARKS, REPO_ROOT

        directory.mkdir(parents=True, exist_ok=True)
        for bench in BENCHMARKS.values():
            shutil.copy(
                REPO_ROOT / bench.result_file, directory / bench.result_file
            )
        return directory

    def test_check_passes_on_committed_baselines(self, tmp_path, capsys):
        results = self._committed(tmp_path / "results")
        rc = main(["bench", "check", "--no-run", "--results-dir", str(results)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench check: ok" in out
        assert "regression" not in out

    def test_check_fails_on_degraded_results(self, tmp_path, capsys):
        results = self._degrade(tmp_path / "degraded")
        rc = main(["bench", "check", "--no-run", "--results-dir", str(results)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "bench check: REGRESSION" in out
        assert "violates" in out

    def test_check_report_file(self, tmp_path, capsys):
        import json

        results = self._degrade(tmp_path / "degraded")
        report = tmp_path / "report.json"
        rc = main(
            ["bench", "check", "--no-run", "--results-dir", str(results),
             "--report", str(report)]
        )
        assert rc == 1
        rows = json.loads(report.read_text())
        assert any(r["status"] == "regression" for r in rows)
        assert {"benchmark", "metric", "status"} <= set(rows[0])

    def test_check_selects_single_benchmark(self, tmp_path, capsys):
        results = self._committed(tmp_path / "results")
        rc = main(
            ["bench", "check", "tick_throughput", "--no-run",
             "--results-dir", str(results)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tick_throughput" in out
        assert "batch_throughput" not in out

    def test_no_run_requires_results_dir(self):
        import pytest

        with pytest.raises(SystemExit, match="--results-dir"):
            main(["bench", "check", "--no-run"])

    def test_unknown_benchmark_name(self):
        import pytest

        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["bench", "check", "nope", "--no-run", "--results-dir", "/tmp"])


class TestList:
    def test_lists_experiments(self, capsys):
        rc = main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "cost-model" in out


class TestWatch:
    def test_renders_region_frames(self, capsys):
        rc = main(["watch", "-n", "100", "--ticks", "2", "--grid", "12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("--- t=") == 3  # initial + 2 ticks
        assert "Q" in out


class TestFuzz:
    def test_run_clean_batch(self, capsys):
        rc = main(["fuzz", "run", "--scenarios", "4", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "0 divergences" in out

    def test_run_needs_a_budget(self):
        import pytest

        with pytest.raises(SystemExit, match="--budget"):
            main(["fuzz", "run"])

    def test_week_number_seed(self):
        from repro.cli import _parse_fuzz_seed

        assert _parse_fuzz_seed("7") == 7
        derived = _parse_fuzz_seed("from-week-number")
        assert isinstance(derived, int)
        assert derived > 2000_00  # year * 100 + ISO week

    def test_corpus_replays_committed_entries(self, capsys):
        rc = main(["fuzz", "corpus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regression.json: ok" in out

    def test_replay_of_corpus_entry(self, capsys):
        from repro.fuzz import corpus_entries

        entry = corpus_entries()[0]
        rc = main(["fuzz", "replay", str(entry)])
        assert rc == 0
        assert "no divergence" in capsys.readouterr().out

    def test_run_reports_shrinks_and_saves_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.grid.search import GridSearch

        from tests.fuzz.conftest import leq_count_closer_than

        monkeypatch.setattr(
            GridSearch, "count_closer_than", leq_count_closer_than
        )
        rc = main(
            [
                "fuzz",
                "run",
                "--scenarios",
                "12",
                "--seed",
                "0",
                "--artifacts",
                str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "shrunk" in out and "artifact:" in out
        assert list(tmp_path.glob("*.json"))
