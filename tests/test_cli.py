"""Tests for the ``igern`` command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_mono_demo_with_check(self, capsys):
        rc = main(["demo", "-n", "200", "--ticks", "3", "--grid", "16", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "monochromatic" in out
        assert "all ticks match brute force" in out

    def test_bi_demo_with_check(self, capsys):
        rc = main(
            ["demo", "--bi", "-n", "200", "--ticks", "3", "--grid", "16", "--check"]
        )
        assert rc == 0
        assert "bichromatic" in capsys.readouterr().out


class TestExperiment:
    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment_with_csv(self, tmp_path, capsys):
        rc = main(
            ["experiment", "fig5", "--scale", "0.05", "--csv", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig5b" in out
        assert (tmp_path / "fig5a.csv").exists()
        assert (tmp_path / "fig5b.csv").exists()

    def test_scalar_experiment(self, capsys):
        rc = main(["experiment", "ablation-pies", "--scale", "0.05"])
        assert rc == 0
        assert "ablation-pies" in capsys.readouterr().out


class TestTrace:
    def test_record_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        rc = main(["trace", str(path), "-n", "30", "--ticks", "5"])
        assert rc == 0
        assert path.exists()
        assert "recorded 30 objects x 5 ticks" in capsys.readouterr().out

        from repro.motion.trace import Trace

        loaded = Trace.load(path)
        assert loaded.n_objects == 30
        assert len(loaded) == 5


class TestList:
    def test_lists_experiments(self, capsys):
        rc = main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "cost-model" in out


class TestWatch:
    def test_renders_region_frames(self, capsys):
        rc = main(["watch", "-n", "100", "--ticks", "2", "--grid", "12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("--- t=") == 3  # initial + 2 ticks
        assert "Q" in out
