"""Tests for the tick flight recorder: digest ring, anomaly detection,
and the replayable incident bundle."""

import json

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.fuzz import replay_artifact
from repro.fuzz.corpus import ARTIFACT_VERSION as FUZZ_ARTIFACT_VERSION
from repro.fuzz.scenario import MOTIONS
from repro.obs.flight import (
    ARTIFACT_VERSION,
    FLIGHT_MOTION,
    FlightRecorder,
    TickDigest,
)
from repro.queries.base import QueryPosition
from repro.queries.igern_mono import IGERNMonoQuery


def _digest(tick, latency, **kw):
    defaults = dict(evaluated=1, skipped=0, moves=4, inserts=0, removes=0)
    defaults.update(kw)
    return TickDigest(tick=tick, latency=latency, **defaults)


def _small_sim(flight):
    sim = build_simulator(
        WorkloadSpec(n_objects=60, grid_size=8, seed=3, network="walk")
    )
    sim.ledger = None
    sim.flight = flight
    qid = central_object(sim)
    sim.add_query(
        "igern", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    )
    sim.execute_queries()
    return sim


class TestDigest:
    def test_to_dict_omits_absent_anomaly(self):
        d = _digest(3, 0.01, top=[("igern", 0.004)])
        out = d.to_dict()
        assert "anomaly" not in out
        assert out["top"] == [["igern", 0.004]]
        d.anomaly = "flagged"
        assert d.to_dict()["anomaly"] == "flagged"


class TestConstruction:
    def test_window_floor(self):
        with pytest.raises(ValueError):
            FlightRecorder(window=1)

    def test_latency_factor_floor(self):
        with pytest.raises(ValueError):
            FlightRecorder(latency_factor=1.0)

    def test_artifact_version_matches_fuzz_corpus(self):
        assert ARTIFACT_VERSION == FUZZ_ARTIFACT_VERSION

    def test_flight_motion_tag_stays_out_of_sampling(self):
        assert FLIGHT_MOTION not in MOTIONS


class TestAnomalyDetection:
    def test_digest_ring_is_bounded(self):
        rec = FlightRecorder(window=4)
        for tick in range(10):
            rec.observe(_digest(tick, 0.01))
        assert len(rec.digests) == 4
        assert [d.tick for d in rec.digests] == [6, 7, 8, 9]

    def test_latency_spike_triggers_after_arming(self):
        rec = FlightRecorder(window=16, latency_factor=2.0, min_history=3)
        # Not armed yet: even a huge tick passes silently.
        assert rec.observe(_digest(0, 5.0)) is None
        for tick in range(1, 4):
            assert rec.observe(_digest(tick, 0.01)) is None
        anomaly = rec.observe(_digest(4, 1.0))
        assert anomaly is not None and "rolling median" in anomaly
        assert rec.digests[-1].anomaly == anomaly

    def test_normal_latency_stays_quiet(self):
        rec = FlightRecorder(window=16, latency_factor=8.0, min_history=2)
        for tick in range(10):
            assert rec.observe(_digest(tick, 0.01)) is None
        assert rec.rolling_median() == pytest.approx(0.01)

    def test_flag_marks_exactly_one_tick(self):
        rec = FlightRecorder(min_history=1000)
        rec.flag("operator request")
        assert rec.observe(_digest(0, 0.01)) == "operator request"
        assert rec.observe(_digest(1, 0.01)) is None


class TestCheckpointWindow:
    def test_capture_without_events_returns_none(self):
        rec = FlightRecorder()
        sim = _small_sim(rec)  # no step yet: checkpoint exists, no events
        assert rec.capture(sim, "too early") is None

    def test_events_only_recorded_with_replayable_delta(self):
        rec = FlightRecorder(window=4)
        rec._checkpoint = {}
        rec.observe(_digest(0, 0.01), moves=None)
        assert rec._events == []
        rec.observe(_digest(1, 0.01), moves=[("o", None)])
        assert len(rec._events) == 1

    def test_checkpoint_refreshes_once_per_window(self):
        rec = FlightRecorder(window=4, min_history=1000)
        sim = _small_sim(rec)
        for _ in range(6):
            sim.step()
        # Window rolled once at tick 5: 4 events filed, then reset to 2.
        assert len(rec._events) == 2
        assert rec._checkpoint_tick == 4
        assert len(rec._checkpoint) == 60


class TestIncidentBundle:
    def test_induced_spike_produces_replayable_bundle(self, tmp_path):
        rec = FlightRecorder(
            window=8, min_history=1000, incident_dir=tmp_path / "incidents"
        )
        sim = _small_sim(rec)
        for _ in range(5):
            sim.step()
        rec.flag("test-induced spike")
        sim.step()

        assert len(rec.incidents) == 1
        bundle = rec.incidents[0]
        assert bundle["version"] == ARTIFACT_VERSION
        assert bundle["flight"]["reason"] == "test-induced spike"
        assert bundle["flight"]["tick"] == 6
        assert bundle["divergences"] == []
        scenario = bundle["scenario"]
        assert scenario["mode"] == "mono"
        assert scenario["motion"] == FLIGHT_MOTION
        assert scenario["n_objects"] == 60
        assert len(scenario["script"]["initial"]) == 60
        assert len(scenario["script"]["ticks"]) == scenario["n_ticks"]
        assert scenario["moving_query"]
        assert scenario["script"]["query_id"] is not None

        [path] = rec.incident_paths
        assert path.name == "incident-t6.json"
        assert json.loads(path.read_text()) == bundle

        # The bundle replays deterministically under the differential
        # harness: scheduler-on/off lockstep plus the brute-force oracle
        # agree, twice in a row.
        first = replay_artifact(path)
        second = replay_artifact(path)
        assert first.divergences == []
        assert second.divergences == []
        assert first.scenario.to_dict() == second.scenario.to_dict()

    def test_incident_ring_is_bounded(self):
        rec = FlightRecorder(window=4, min_history=1000, max_incidents=2)
        sim = _small_sim(rec)
        for spike in range(3):
            sim.step()
            rec.flag(f"spike {spike}")
            sim.step()
        assert len(rec.incidents) == 2
        assert rec.incidents[-1]["flight"]["reason"] == "spike 2"
