"""Tests for the per-query cost ledger: recording, attribution math,
the ring bound, and the explain report."""

import pytest

from repro.obs.ledger import (
    EVALUATED,
    REASON_DELTA_DISJOINT,
    REASON_FOOTPRINT_ENTER,
    REASON_INITIAL,
    REASON_NO_FOOTPRINT,
    REASON_OBJECT_MOVED,
    REASON_RESUME_FORCED,
    REASON_SCHEDULER_OFF,
    SKIPPED,
    QueryCostLedger,
    QueryTickCost,
    TickRecord,
    get_ledger,
    phase,
)


def _cost(query="q", tick=0, decision=EVALUATED, reason=REASON_INITIAL, **kw):
    return QueryTickCost(
        query=query, tick=tick, decision=decision, reason=reason, **kw
    )


class TestReasonVocabulary:
    def test_reason_codes_are_distinct(self):
        reasons = {
            REASON_DELTA_DISJOINT,
            REASON_INITIAL,
            REASON_RESUME_FORCED,
            REASON_FOOTPRINT_ENTER,
            REASON_OBJECT_MOVED,
            REASON_NO_FOOTPRINT,
            REASON_SCHEDULER_OFF,
        }
        assert len(reasons) == 7

    def test_reasons_documented_in_observability_guide(self):
        from pathlib import Path

        doc = (
            Path(__file__).resolve().parents[2]
            / "docs"
            / "OBSERVABILITY.md"
        ).read_text()
        for reason in (
            REASON_DELTA_DISJOINT,
            REASON_INITIAL,
            REASON_RESUME_FORCED,
            REASON_FOOTPRINT_ENTER,
            REASON_OBJECT_MOVED,
            REASON_NO_FOOTPRINT,
            REASON_SCHEDULER_OFF,
        ):
            assert f"`{reason}`" in doc


class TestQueryTickCost:
    def test_absorb_ops_routes_counter_families(self):
        cost = _cost()
        cost.absorb_ops(
            {
                "calls_BOUNDED": 2,
                "calls_CONSTRAINED": 1,
                "cells_alive": 10,
                "cells_probed": 5,
                "objects_scanned": 40,
                "witness_probes": 3,
                "unrelated": 99,
                "calls_empty": 0,
            }
        )
        assert cost.search_calls == 3
        assert cost.cells_visited == 15
        assert cost.objects_examined == 40
        assert cost.witness_probes == 3

    def test_phase_total_and_unattributed(self):
        cost = _cost(wall_time=0.010)
        cost.phases = {"tighten": 0.004, "verify": 0.003}
        assert cost.phase_total() == pytest.approx(0.007)
        assert cost.unattributed() == pytest.approx(0.003)

    def test_unattributed_clamps_at_zero(self):
        cost = _cost(wall_time=0.001)
        cost.phases = {"verify": 0.005}
        assert cost.unattributed() == 0.0

    def test_phase_helper_accumulates(self):
        cost = _cost()
        with phase(cost, "tighten"):
            pass
        with phase(cost, "tighten"):
            pass
        assert cost.phases["tighten"] >= 0.0
        assert set(cost.phases) == {"tighten"}

    def test_phase_helper_is_noop_without_cost(self):
        with phase(None, "tighten") as span:
            pass
        assert not hasattr(span, "phases")


class TestTickRecord:
    def test_top_is_deterministic_on_wall_ties(self):
        record = TickRecord(tick=0)
        for name in ("zeta", "alpha", "mid"):
            record.costs[name] = _cost(query=name, wall_time=1.0)
        record.costs["skip"] = _cost(
            query="skip", decision=SKIPPED, reason=REASON_DELTA_DISJOINT
        )
        top = record.top(2)
        assert [c.query for c in top] == ["alpha", "mid"]

    def test_attributed_time_includes_engine_glue(self):
        record = TickRecord(
            tick=0,
            movement_time=0.002,
            scheduler_time=0.001,
            dispatch_time=0.0005,
        )
        record.costs["q"] = _cost(wall_time=0.004)
        assert record.attributed_time() == pytest.approx(0.0075)

    def test_attributed_fraction_none_when_untimed(self):
        record = TickRecord(tick=0)
        assert record.attributed_fraction() is None
        record.total_time = 0.01
        record.costs["q"] = _cost(wall_time=0.005)
        assert record.attributed_fraction() == pytest.approx(0.5)


class TestLedgerRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCostLedger(capacity=0)

    def test_ring_evicts_oldest_and_forgets_index(self):
        ledger = QueryCostLedger(capacity=3)
        for tick in range(5):
            ledger.begin_tick(tick)
            ledger.record(_cost(tick=tick))
            ledger.end_tick(0.001)
        assert [r.tick for r in ledger.records()] == [2, 3, 4]
        assert ledger.record_for(0) is None
        assert ledger.record_for(4) is not None
        assert ledger.latest().tick == 4

    def test_begin_tick_is_idempotent_per_tick(self):
        ledger = QueryCostLedger()
        first = ledger.begin_tick(7)
        again = ledger.begin_tick(7)
        assert first is again
        assert len(ledger.records()) == 1

    def test_record_reopens_matching_tick(self):
        ledger = QueryCostLedger()
        ledger.begin_tick(1)
        ledger.begin_tick(2)
        ledger.record(_cost(query="late", tick=1))
        assert "late" in ledger.record_for(1).costs

    def test_history_and_queries(self):
        ledger = QueryCostLedger()
        for tick in range(3):
            ledger.begin_tick(tick)
            ledger.record(_cost(query="a", tick=tick))
            if tick == 1:
                ledger.record(_cost(query="b", tick=tick))
        assert [c.tick for c in ledger.history("a")] == [0, 1, 2]
        assert [c.tick for c in ledger.history("b")] == [1]
        assert ledger.queries() == ["a", "b"]

    def test_clear_resets_everything(self):
        ledger = QueryCostLedger()
        ledger.begin_tick(0)
        ledger.record(_cost())
        ledger.clear()
        assert ledger.records() == []
        assert ledger.latest() is None

    def test_end_tick_accumulates_across_simulators(self):
        """Two simulators replaying the same tick into a shared ledger
        merge their measurements instead of the second overwriting."""
        ledger = QueryCostLedger()
        ledger.begin_tick(3)
        ledger.record(_cost(query="mono", tick=3, wall_time=0.004))
        ledger.end_tick(0.005, movement_time=0.001)
        ledger.begin_tick(3)
        ledger.record(_cost(query="bi", tick=3, wall_time=0.002))
        ledger.end_tick(0.003, scheduler_time=0.0002)
        record = ledger.record_for(3)
        assert record.total_time == pytest.approx(0.008)
        assert record.movement_time == pytest.approx(0.001)
        assert record.scheduler_time == pytest.approx(0.0002)
        assert record.attributed_fraction() < 1.0

    def test_global_ledger_is_shared(self):
        assert get_ledger() is get_ledger()


class TestExplain:
    def _ledger(self):
        ledger = QueryCostLedger()
        ledger.begin_tick(4)
        ledger.record(
            _cost(
                query="igern",
                tick=4,
                reason=REASON_OBJECT_MOVED,
                wall_time=0.004,
                phases={"tighten": 0.001, "verify": 0.002},
                search_calls=3,
                cells_visited=17,
                objects_examined=120,
                witness_probes=6,
                shared_hits=9,
                shared_misses=3,
                exact_fallbacks=1,
                answer_size=2,
                monitored=14,
            )
        )
        ledger.record(
            _cost(
                query="idle",
                tick=4,
                decision=SKIPPED,
                reason=REASON_DELTA_DISJOINT,
                answer_size=5,
            )
        )
        ledger.end_tick(0.006, movement_time=0.001)
        return ledger

    def test_empty_ledger_explains_itself(self):
        report = QueryCostLedger().explain("igern")
        assert "ledger is empty" in report

    def test_unknown_query_lists_known_ones(self):
        report = self._ledger().explain("nope")
        assert "no retained tick mentions" in report
        assert "idle, igern" in report

    def test_unretained_tick_reports_range(self):
        report = self._ledger().explain("igern", tick=99)
        assert "tick 99 is not retained" in report
        assert "4..4" in report

    def test_query_missing_at_tick(self):
        ledger = self._ledger()
        ledger.begin_tick(5)
        ledger.record(_cost(query="other", tick=5))
        report = ledger.explain("igern", tick=5)
        assert "no entry at tick 5" in report
        assert "other" in report

    def test_evaluated_report_sections(self):
        report = self._ledger().explain("igern", tick=4)
        assert "'igern' tick 4 — evaluated (object-moved)" in report
        assert "tighten" in report and "verify" in report
        assert "unattributed" in report
        assert "3 calls, 17 cells visited" in report
        assert "120 objects examined, 6 witness probes" in report
        assert "9 hits / 3 misses (75.0% shared)" in report
        assert "1 exact fallback(s)" in report
        assert "answer: 2 object(s), monitored 14" in report
        assert "2 queries (1 evaluated, 1 skipped)" in report
        assert "movement" in report and "attributed" in report

    def test_skipped_report_carries_answer(self):
        report = self._ledger().explain("idle", tick=4)
        assert "skipped (delta-disjoint)" in report
        assert "previous answer carried forward (5 object(s))" in report

    def test_default_tick_is_latest_mention(self):
        ledger = self._ledger()
        ledger.begin_tick(6)
        ledger.record(_cost(query="igern", tick=6, reason=REASON_INITIAL))
        assert "tick 6" in ledger.explain("igern")
