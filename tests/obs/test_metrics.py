"""Tests for the metrics registry and the SearchStats bridge."""

import pytest

from repro.grid.search import SearchKind, SearchStats
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_search_stats,
    record_ops_delta,
)


class TestCounter:
    def test_inc(self):
        c = Counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("level")
        g.set(10)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0


class TestHistogram:
    def test_observe_buckets_inclusive_upper_edge(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        # buckets: <=1.0, <=2.0, <=4.0, +Inf
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(106.0)
        assert h.mean == pytest.approx(21.2)

    def test_cumulative_buckets(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(10.0)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_percentile_estimates_from_edges(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.percentile(50) == 1.0
        assert h.percentile(100) == 4.0

    def test_percentile_validation_and_empty(self):
        h = Histogram("t", buckets=(1.0,))
        assert h.percentile(99) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_empty_is_zero_for_any_p(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        for p in (0.001, 50, 100):
            assert h.percentile(p) == 0.0

    def test_percentile_clamps_overflow_to_last_edge(self):
        """Observations beyond the last bound land in the overflow
        bucket; percentiles answered from it clamp to the last finite
        edge rather than inventing an +Inf estimate."""
        h = Histogram("t", buckets=(1.0, 2.0))
        for v in (50.0, 99.0, 1e9):
            h.observe(v)
        assert h.percentile(1) == 2.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 2.0

    def test_percentile_100_is_the_maximum_bucket(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(3.5)
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == 1.0

    def test_tiny_percentile_hits_first_occupied_bucket(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        h.observe(3.0)  # only the <=4.0 bucket is occupied
        assert h.percentile(0.001) == 4.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", kind="BOUNDED")
        b = reg.counter("hits_total", kind="BOUNDED")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", kind="BOUNDED").inc()
        reg.counter("hits_total", kind="CONSTRAINED").inc(2)
        assert reg.get("hits_total", kind="BOUNDED").value == 1
        assert reg.get("hits_total", kind="CONSTRAINED").value == 2
        assert len(reg) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", b="2", a="1")
        b = reg.counter("x_total", a="1", b="2")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")

    def test_get_without_create(self):
        reg = MetricsRegistry()
        assert reg.get("absent") is None
        assert len(reg) == 0

    def test_collect_sorted_and_clear(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert [m.name for m in reg.collect()] == ["a_total", "b_total"]
        reg.clear()
        assert len(reg) == 0


class TestSearchStatsBridge:
    def test_record_ops_delta_splits_flavor(self):
        reg = MetricsRegistry()
        record_ops_delta(
            reg, {"calls_NN": 2, "calls_NN_c": 3, "cells_NN_b": 7, "objects_NN": 0}
        )
        assert reg.get("search_calls_total", kind="UNCONSTRAINED").value == 2
        assert reg.get("search_calls_total", kind="CONSTRAINED").value == 3
        assert reg.get("search_cells_visited_total", kind="BOUNDED").value == 7
        # zero deltas create nothing
        assert reg.get("search_objects_examined_total", kind="UNCONSTRAINED") is None

    def test_record_ops_delta_extra_labels(self):
        reg = MetricsRegistry()
        record_ops_delta(reg, {"calls_NN": 1}, query="igern")
        metric = reg.get("search_calls_total", kind="UNCONSTRAINED", query="igern")
        assert metric is not None and metric.value == 1

    def test_absorb_search_stats_touches_all_flavors(self):
        stats = SearchStats()
        stats.calls[SearchKind.CONSTRAINED] += 1
        stats.cells_visited[SearchKind.CONSTRAINED] += 4
        stats.objects_examined[SearchKind.CONSTRAINED] += 9
        reg = MetricsRegistry()
        absorb_search_stats(reg, stats)
        for flavor in ("UNCONSTRAINED", "CONSTRAINED", "BOUNDED"):
            assert reg.get("search_calls_total", kind=flavor) is not None
        assert reg.get("search_calls_total", kind="CONSTRAINED").value == 1
        assert reg.get("search_cells_visited_total", kind="CONSTRAINED").value == 4
        assert reg.get("search_objects_examined_total", kind="CONSTRAINED").value == 9
        assert reg.get("search_calls_total", kind="UNCONSTRAINED").value == 0
