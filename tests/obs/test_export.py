"""Tests for the exporters: JSON lines, Prometheus text, Chrome trace,
summary table."""

import io
import json

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import (
    JsonLinesSink,
    prometheus_text,
    span_from_dict,
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
    summary_table,
    write_chrome_trace,
    write_metrics_text,
    write_spans_jsonl,
)
from repro.obs.ledger import QueryCostLedger, QueryTickCost
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def traced_fixture():
    tracer = Tracer(clock=FakeClock())
    tracer.enable()
    with tracer.span("engine.tick", tick=0):
        tracer.clock.advance(0.25)
        with tracer.span("mono.incremental"):
            tracer.clock.advance(0.5)
    return tracer


class TestJsonLines:
    def test_spans_to_jsonl_roundtrip(self):
        tracer = traced_fixture()
        lines = spans_to_jsonl(tracer.spans()).splitlines()
        assert len(lines) == 2
        inner = json.loads(lines[0])
        outer = json.loads(lines[1])
        assert inner["name"] == "mono.incremental"
        assert inner["parent"] == "engine.tick"
        assert outer["name"] == "engine.tick"
        assert outer["attrs"] == {"tick": 0}
        assert outer["duration"] == 0.75

    def test_write_spans_jsonl(self, tmp_path):
        tracer = traced_fixture()
        path = write_spans_jsonl(tmp_path / "trace.jsonl", tracer)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)

    def test_write_empty_trace(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "empty.jsonl", Tracer())
        assert path.read_text() == ""

    def test_live_sink_streams_as_spans_finish(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        buf = io.StringIO()
        sink = JsonLinesSink(buf)
        tracer.add_sink(sink)
        with tracer.span("a"):
            pass
        assert json.loads(buf.getvalue())["name"] == "a"
        sink.close()  # borrowed file object stays open
        buf.write("")

    def test_sink_owns_path(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        target = tmp_path / "live.jsonl"
        with JsonLinesSink(target) as sink:
            tracer.add_sink(sink)
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        lines = target.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["x", "y"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("search_calls_total", kind="BOUNDED").inc(4)
        reg.gauge("query_answer_size", query="igern").set(3)
        text = prometheus_text(reg)
        assert "# TYPE repro_search_calls_total counter" in text
        assert 'repro_search_calls_total{kind="BOUNDED"} 4' in text
        assert "# TYPE repro_query_answer_size gauge" in text
        assert 'repro_query_answer_size{query="igern"} 3' in text
        assert text.endswith("\n")

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        h = reg.histogram("tick_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = prometheus_text(reg)
        assert 'repro_tick_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_tick_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_tick_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_tick_seconds_sum 5.05" in text
        assert "repro_tick_seconds_count 2" in text
        assert "# TYPE repro_tick_seconds histogram" in text

    def test_dots_become_underscores(self):
        reg = MetricsRegistry()
        reg.counter("engine.tick.count").inc()
        assert "repro_engine_tick_count 1" in prometheus_text(reg)

    def test_type_line_emitted_once_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("c_total", kind="A").inc()
        reg.counter("c_total", kind="B").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE repro_c_total counter") == 1

    def test_write_metrics_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(9)
        path = write_metrics_text(tmp_path / "metrics.prom", reg)
        assert "repro_x_total 9" in path.read_text()

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestPrometheusEscaping:
    def test_backslash_quote_and_newline_escaped(self):
        reg = MetricsRegistry()
        hostile = 'a\\b"c\nd'
        reg.counter("hostile_total", query=hostile).inc(2)
        text = prometheus_text(reg)
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        assert 'query="a\\\\b\\"c\\nd"' in text
        # The raw newline must never survive into the exposition line.
        line = next(l for l in text.splitlines() if "hostile_total{" in l)
        assert line.endswith(" 2")

    def test_escaped_output_is_line_safe(self):
        reg = MetricsRegistry()
        reg.gauge("g", a="x\ny", b='q"r', c="s\\t").set(1)
        text = prometheus_text(reg)
        # Every non-comment line still parses as 'name{labels} value'.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert line.rsplit(" ", 1)[1] == "1"

    def test_benign_values_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("ok_total", query="igern-bi").inc()
        assert 'query="igern-bi"' in prometheus_text(reg)


class TestSpanRoundTrip:
    def test_span_from_dict_reconstructs_end(self):
        span = span_from_dict(
            {"name": "x", "start": 2.0, "duration": 0.5, "depth": 1}
        )
        assert span.end == 2.5
        assert span.duration == 0.5
        assert span.parent is None and span.attrs == {}
        assert span.to_dict() == {
            "name": "x",
            "start": 2.0,
            "duration": 0.5,
            "depth": 1,
        }

    def test_jsonl_roundtrip_preserves_structure(self):
        tracer = traced_fixture()
        parsed = spans_from_jsonl(spans_to_jsonl(tracer.spans()))
        assert [s.name for s in parsed] == ["mono.incremental", "engine.tick"]
        assert parsed[0].parent == "engine.tick"
        assert parsed[1].attrs == {"tick": 0}
        assert parsed[1].duration == 0.75

    span_dicts = st.fixed_dictionaries(
        {
            "name": st.text(min_size=1, max_size=16),
            "start": st.floats(
                min_value=0.0, max_value=1e9, allow_nan=False
            ),
            "duration": st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False
            ),
            "depth": st.integers(min_value=0, max_value=12),
        },
        optional={
            "parent": st.text(min_size=1, max_size=16),
            "attrs": st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.one_of(
                    st.integers(min_value=-(2**31), max_value=2**31),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=16),
                    st.booleans(),
                ),
                max_size=3,
            ),
        },
    )

    @given(st.lists(span_dicts, max_size=5))
    def test_parse_export_cycle_is_idempotent(self, dicts):
        """One parse/re-export normalizes; a second changes nothing."""
        jsonl = "\n".join(json.dumps(d) for d in dicts)
        once = spans_from_jsonl(jsonl)
        text1 = spans_to_jsonl(once)
        twice = spans_from_jsonl(text1)
        assert spans_to_jsonl(twice) == text1
        for before, after in zip(dicts, once):
            assert after.name == before["name"]
            assert after.depth == before["depth"]
            assert after.parent == before.get("parent")
            assert after.attrs == (before.get("attrs") or {})


class TestChromeTrace:
    def test_spans_become_complete_events_in_microseconds(self):
        tracer = traced_fixture()
        doc = spans_to_chrome_trace(tracer.spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        outer = next(e for e in events if e["name"] == "engine.tick")
        assert outer["dur"] == 0.75 * 1e6
        assert outer["args"] == {"tick": 0}

    def test_ledger_rows_become_counter_tracks(self):
        ledger = QueryCostLedger(clock=lambda: 2.0)
        ledger.enable()
        ledger.begin_tick(1)
        ledger.record(
            QueryTickCost(
                query="q0",
                tick=1,
                decision="evaluated",
                reason="initial",
                wall_time=0.003,
                cells_visited=17,
            )
        )
        ledger.record(
            QueryTickCost(
                query="q1", tick=1, decision="skipped", reason="delta-disjoint"
            )
        )
        ledger.end_tick(0.004)
        doc = spans_to_chrome_trace([], ledger=ledger)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "ledger.query_wall_us",
            "ledger.cells_visited",
        }
        walls = next(
            e for e in counters if e["name"] == "ledger.query_wall_us"
        )
        # Only evaluated queries appear; skipped q1 has no track value.
        assert walls["args"] == {"q0": 3000.0}
        assert walls["ts"] == 2.0 * 1e6

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = traced_fixture()
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2


class TestSummaryTable:
    def test_span_rows_sorted_by_total(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("cheap"):
            tracer.clock.advance(0.01)
        with tracer.span("expensive"):
            tracer.clock.advance(2.0)
        text = summary_table(tracer)
        assert text.index("expensive") < text.index("cheap")
        assert "count" in text and "total" in text

    def test_sorted_by_self_time_not_total(self):
        """A parent whose time is all children ranks below the child."""
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("parent"):
            tracer.clock.advance(0.01)
            with tracer.span("child"):
                tracer.clock.advance(2.0)
        text = summary_table(tracer)
        assert text.index("child") < text.index("parent")

    def test_self_time_sort_is_deterministic_on_ties(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        for name in ("zeta", "alpha", "mid"):
            with tracer.span(name):
                tracer.clock.advance(1.0)
        text = summary_table(tracer)
        assert text.index("alpha") < text.index("mid") < text.index("zeta")

    def test_top_truncates_and_reports_hidden_rows(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        for i, name in enumerate(["a", "b", "c", "d"]):
            with tracer.span(name):
                tracer.clock.advance(float(4 - i))
        text = summary_table(tracer, top=2)
        assert "a" in text and "b" in text
        assert "\n  c " not in text and "\n  d " not in text
        assert "... 2 more span name(s)" in text

    def test_skip_reason_breakdown(self):
        reg = MetricsRegistry()
        reg.counter(
            "ticks_skipped_total", query="q0", reason="delta-disjoint"
        ).inc(5)
        reg.counter(
            "ticks_skipped_total", query="q1", reason="delta-disjoint"
        ).inc(2)
        text = summary_table(registry=reg)
        assert "scheduler skips by reason" in text
        assert "delta-disjoint: 7" in text

    def test_unlabeled_skips_still_counted(self):
        reg = MetricsRegistry()
        reg.counter("ticks_skipped_total", query="q0").inc(3)
        text = summary_table(registry=reg)
        assert "(unlabeled): 3" in text

    def test_metrics_section(self):
        reg = MetricsRegistry()
        reg.counter("search_calls_total", kind="CONSTRAINED").inc(7)
        h = reg.histogram("query_tick_seconds", query="igern")
        h.observe(0.002)
        text = summary_table(registry=reg)
        assert "search_calls_total{kind=CONSTRAINED}: 7" in text
        assert "query_tick_seconds{query=igern}" in text
        assert "p95=" in text

    def test_empty_sections_have_placeholders(self):
        text = summary_table(Tracer(), MetricsRegistry())
        assert "(no spans recorded" in text
        assert "(no metrics recorded)" in text
