"""Tests for the exporters: JSON lines, Prometheus text, summary table."""

import io
import json

from repro.obs.export import (
    JsonLinesSink,
    prometheus_text,
    spans_to_jsonl,
    summary_table,
    write_metrics_text,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def traced_fixture():
    tracer = Tracer(clock=FakeClock())
    tracer.enable()
    with tracer.span("engine.tick", tick=0):
        tracer.clock.advance(0.25)
        with tracer.span("mono.incremental"):
            tracer.clock.advance(0.5)
    return tracer


class TestJsonLines:
    def test_spans_to_jsonl_roundtrip(self):
        tracer = traced_fixture()
        lines = spans_to_jsonl(tracer.spans()).splitlines()
        assert len(lines) == 2
        inner = json.loads(lines[0])
        outer = json.loads(lines[1])
        assert inner["name"] == "mono.incremental"
        assert inner["parent"] == "engine.tick"
        assert outer["name"] == "engine.tick"
        assert outer["attrs"] == {"tick": 0}
        assert outer["duration"] == 0.75

    def test_write_spans_jsonl(self, tmp_path):
        tracer = traced_fixture()
        path = write_spans_jsonl(tmp_path / "trace.jsonl", tracer)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)

    def test_write_empty_trace(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "empty.jsonl", Tracer())
        assert path.read_text() == ""

    def test_live_sink_streams_as_spans_finish(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        buf = io.StringIO()
        sink = JsonLinesSink(buf)
        tracer.add_sink(sink)
        with tracer.span("a"):
            pass
        assert json.loads(buf.getvalue())["name"] == "a"
        sink.close()  # borrowed file object stays open
        buf.write("")

    def test_sink_owns_path(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        target = tmp_path / "live.jsonl"
        with JsonLinesSink(target) as sink:
            tracer.add_sink(sink)
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        lines = target.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["x", "y"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("search_calls_total", kind="BOUNDED").inc(4)
        reg.gauge("query_answer_size", query="igern").set(3)
        text = prometheus_text(reg)
        assert "# TYPE repro_search_calls_total counter" in text
        assert 'repro_search_calls_total{kind="BOUNDED"} 4' in text
        assert "# TYPE repro_query_answer_size gauge" in text
        assert 'repro_query_answer_size{query="igern"} 3' in text
        assert text.endswith("\n")

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        h = reg.histogram("tick_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = prometheus_text(reg)
        assert 'repro_tick_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_tick_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_tick_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_tick_seconds_sum 5.05" in text
        assert "repro_tick_seconds_count 2" in text
        assert "# TYPE repro_tick_seconds histogram" in text

    def test_dots_become_underscores(self):
        reg = MetricsRegistry()
        reg.counter("engine.tick.count").inc()
        assert "repro_engine_tick_count 1" in prometheus_text(reg)

    def test_type_line_emitted_once_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("c_total", kind="A").inc()
        reg.counter("c_total", kind="B").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE repro_c_total counter") == 1

    def test_write_metrics_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(9)
        path = write_metrics_text(tmp_path / "metrics.prom", reg)
        assert "repro_x_total 9" in path.read_text()

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestSummaryTable:
    def test_span_rows_sorted_by_total(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("cheap"):
            tracer.clock.advance(0.01)
        with tracer.span("expensive"):
            tracer.clock.advance(2.0)
        text = summary_table(tracer)
        assert text.index("expensive") < text.index("cheap")
        assert "count" in text and "total" in text

    def test_metrics_section(self):
        reg = MetricsRegistry()
        reg.counter("search_calls_total", kind="CONSTRAINED").inc(7)
        h = reg.histogram("query_tick_seconds", query="igern")
        h.observe(0.002)
        text = summary_table(registry=reg)
        assert "search_calls_total{kind=CONSTRAINED}: 7" in text
        assert "query_tick_seconds{query=igern}" in text
        assert "p95=" in text

    def test_empty_sections_have_placeholders(self):
        text = summary_table(Tracer(), MetricsRegistry())
        assert "(no spans recorded" in text
        assert "(no metrics recorded)" in text
