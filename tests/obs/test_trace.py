"""Tests for the hierarchical span tracer."""

import threading

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic perf_counter stand-in: advances on demand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_tracer(**kwargs):
    tracer = Tracer(clock=FakeClock(), **kwargs)
    tracer.enable()
    return tracer


class TestDisabledPath:
    def test_disabled_span_is_null_singleton(self):
        tracer = Tracer()
        assert tracer.span("x") is NULL_SPAN
        assert tracer.span("y", a=1) is NULL_SPAN

    def test_null_span_context_manager_and_set(self):
        with NULL_SPAN as sp:
            assert sp.set(anything=42) is NULL_SPAN
        assert not Tracer().spans()

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        assert tracer.spans() == []

    def test_enable_disable_toggles(self):
        tracer = Tracer()
        assert tracer.enabled is False
        tracer.enable()
        assert tracer.enabled is True
        with tracer.span("a"):
            pass
        tracer.disable()
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans()] == ["a"]


class TestSpanLifecycle:
    def test_with_block_records_duration(self):
        tracer = make_tracer()
        with tracer.span("work") as sp:
            tracer.clock.advance(0.5)
        assert sp.duration == 0.5
        assert tracer.spans() == [sp]

    def test_begin_end_hot_path(self):
        tracer = make_tracer()
        sp = tracer.begin("grid.search.nearest", kind="UNCONSTRAINED")
        tracer.clock.advance(0.001)
        tracer.end(sp, cells=3)
        assert sp.duration == 0.001
        assert sp.attrs == {"kind": "UNCONSTRAINED", "cells": 3}

    def test_set_attaches_attributes(self):
        tracer = make_tracer()
        with tracer.span("phase", tick=7) as sp:
            sp.set(found=True).set(candidates=5)
        assert sp.attrs == {"tick": 7, "found": True, "candidates": 5}

    def test_to_dict_shape(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            tracer.clock.advance(1.0)
            with tracer.span("inner", n=2):
                tracer.clock.advance(2.0)
        inner = tracer.spans()[0]
        d = inner.to_dict()
        assert d["name"] == "inner"
        assert d["duration"] == 2.0
        assert d["depth"] == 1
        assert d["parent"] == "outer"
        assert d["attrs"] == {"n": 2}
        outer_d = tracer.spans()[1].to_dict()
        assert "parent" not in outer_d and "attrs" not in outer_d


class TestNesting:
    def test_depth_and_parent(self):
        tracer = make_tracer()
        with tracer.span("engine.tick"):
            with tracer.span("mono.incremental"):
                with tracer.span("mono.incremental.verify"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["engine.tick"].depth == 0
        assert by_name["engine.tick"].parent is None
        assert by_name["mono.incremental"].parent == "engine.tick"
        assert by_name["mono.incremental.verify"].depth == 2
        assert by_name["mono.incremental.verify"].parent == "mono.incremental"

    def test_siblings_share_parent(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a"].parent == by_name["b"].parent == "root"
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_stack_is_thread_local(self):
        tracer = make_tracer()
        seen = {}

        def worker():
            with tracer.span("thread.child") as sp:
                seen["depth"] = sp.depth
                seen["parent"] = sp.parent

        with tracer.span("main.root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == {"depth": 0, "parent": None}  # not nested under main.root


class TestRetention:
    def test_ring_buffer_drops_oldest(self):
        tracer = make_tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_clear(self):
        tracer = make_tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []

    def test_sink_sees_every_span_even_past_capacity(self):
        tracer = make_tracer(capacity=2)
        names = []
        tracer.add_sink(lambda s: names.append(s.name))
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert names == ["s0", "s1", "s2", "s3"]

    def test_remove_sink_stops_forwarding(self):
        tracer = make_tracer()
        names = []
        sink = lambda s: names.append(s.name)  # noqa: E731
        tracer.add_sink(sink)
        with tracer.span("kept"):
            pass
        tracer.remove_sink(sink)
        with tracer.span("dropped"):
            pass
        assert names == ["kept"]


class TestAggregate:
    def test_counts_totals_and_ops(self):
        tracer = make_tracer()
        for cells in (3, 5):
            with tracer.span("grid.search.nearest", cells=cells):
                tracer.clock.advance(0.25)
        with tracer.span("mono.initial"):
            tracer.clock.advance(1.0)
        aggs = tracer.aggregate()
        nearest = aggs["grid.search.nearest"]
        assert nearest.count == 2
        assert nearest.total == 0.5
        assert nearest.mean == 0.25
        assert nearest.min == nearest.max == 0.25
        assert nearest.ops == {"cells": 8}
        assert aggs["mono.initial"].count == 1

    def test_aggregate_skips_bool_and_string_attrs(self):
        tracer = make_tracer()
        with tracer.span("x", found=True, kind="BOUNDED", n=2):
            pass
        assert tracer.aggregate()["x"].ops == {"n": 2}

    def test_prefix_filter(self):
        tracer = make_tracer()
        for name in ("mono.initial", "mono.incremental", "bi.initial"):
            with tracer.span(name):
                pass
        assert set(tracer.aggregate("mono.")) == {"mono.initial", "mono.incremental"}


class TestGlobalFacade:
    def test_obs_enable_disable_roundtrip(self):
        try:
            tracer, registry = obs.enable()
            assert obs.enabled() is True
            assert tracer is obs.get_tracer()
            assert registry is obs.get_registry()
            from repro.obs.metrics import active_registry

            assert active_registry() is registry
        finally:
            obs.disable(clear=True)
        assert obs.enabled() is False
        from repro.obs.metrics import active_registry

        assert active_registry() is None

    def test_summary_mentions_spans_header(self):
        try:
            obs.enable()
            with obs.get_tracer().span("demo.phase"):
                pass
            text = obs.summary()
            assert "spans (per-phase breakdown" in text
            assert "demo.phase" in text
        finally:
            obs.disable(clear=True)


class TestInstrumentationIntegration:
    """End-to-end: running queries under tracing produces the phase spans."""

    def test_mono_igern_phases_visible(self):
        from repro.engine.workload import WorkloadSpec, build_simulator, central_object
        from repro.queries import IGERNMonoQuery, QueryPosition

        tracer = obs.get_tracer()
        try:
            obs.enable(metrics=False)
            tracer.clear()
            sim = build_simulator(WorkloadSpec(n_objects=300, grid_size=16, seed=3))
            qid = central_object(sim)
            sim.add_query(
                "igern", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
            )
            sim.run(4)
            names = {s.name for s in tracer.spans()}
        finally:
            obs.disable(clear=True)
        # The acceptance criterion: initial, incremental, and verification
        # phases separately visible.
        assert "mono.initial" in names
        assert "mono.initial.verify" in names
        assert "mono.incremental" in names
        assert "mono.incremental.verify" in names
        assert "engine.tick" in names
        assert any(n.startswith("grid.search.") for n in names)
