"""Process-global stats must survive the process boundary.

Regression tests for the lost-counts bug: the engine accounts low-level
work in three process-global mutable singletons
(``repro.geometry.predicates.STATS``, ``repro.metric.STATS``,
``repro.grid.store.STATS``).  Before the snapshot/merge seam, a
multiprocessing deployment silently dropped every count accumulated in a
worker — the parent's obs totals reflected only the parent's own (near
zero) work.  These tests pin the seam itself and the end-to-end
guarantee: a two-process run sums to the single-process totals.
"""

import multiprocessing

import pytest

from repro.engine.simulation import Simulator
from repro.geometry.predicates import PredicateStats
from repro.grid.store import StoreStats
from repro.metric import MetricStats
from repro.motion.uniform import RandomWalkGenerator
from repro.obs.metrics import MetricsRegistry
from repro.queries import IGERNMonoQuery, QueryPosition
from repro.serving.counters import merge_stats, stats_delta, stats_snapshot


# ----------------------------------------------------------------------
# Seam units
# ----------------------------------------------------------------------


def test_predicate_stats_snapshot_and_merge():
    stats = PredicateStats()
    stats.filter_hits = 3
    stats.exact_fallbacks = 1
    snap = stats.snapshot()
    assert snap == {"filter_hits": 3, "exact_fallbacks": 1}
    other = PredicateStats()
    other.filter_hits = 10
    other.merge(snap)
    assert other.filter_hits == 13
    assert other.exact_fallbacks == 1


def test_metric_stats_snapshot_and_merge():
    stats = MetricStats()
    stats.dijkstra_runs = 2
    stats.cache_hits = 5
    other = MetricStats()
    other.cache_misses = 4
    other.merge(stats.snapshot())
    assert other.dijkstra_runs == 2
    assert other.cache_hits == 5
    assert other.cache_misses == 4


def test_store_stats_snapshot_and_merge():
    stats = StoreStats()
    stats.rows_scanned = 7
    stats.exact_rows = 2
    other = StoreStats()
    other.merge(stats.snapshot())
    assert other.rows_scanned == 7
    assert other.filter_rows == 0
    assert other.exact_rows == 2


def test_stats_delta_is_per_counter_difference():
    base = {"metric": {"cache_hits": 3, "cache_misses": 1}}
    current = {"metric": {"cache_hits": 10, "cache_misses": 1}}
    assert stats_delta(base, current) == {
        "metric": {"cache_hits": 7, "cache_misses": 0}
    }


def test_registry_snapshot_merge_roundtrip():
    source = MetricsRegistry()
    source.counter("ticks_total").inc(4)
    source.gauge("objects_monitored").set(17)
    hist = source.histogram("tick_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)

    target = MetricsRegistry()
    target.counter("ticks_total").inc(1)
    target.merge(source.snapshot())

    assert target.counter("ticks_total").value == 5
    assert target.gauge("objects_monitored").value == 17
    merged = target.histogram("tick_seconds", buckets=(0.1, 1.0))
    assert merged.count == 3
    assert merged.total == pytest.approx(5.55)
    assert merged.bucket_counts == [1, 1, 1]


def test_registry_merge_tags_extra_labels():
    source = MetricsRegistry()
    source.counter("shard_ticks_total").inc(2)
    target = MetricsRegistry()
    target.merge(source.snapshot(), shard="3")
    assert target.counter("shard_ticks_total", shard="3").value == 2


def test_registry_merge_rejects_mismatched_histogram_buckets():
    source = MetricsRegistry()
    source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    target = MetricsRegistry()
    target.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
    with pytest.raises(ValueError):
        target.merge(source.snapshot())


# ----------------------------------------------------------------------
# Two-process summation (the bug end to end)
# ----------------------------------------------------------------------


def _run_workload(seed: int) -> dict:
    """One small monochromatic workload; returns the stats delta it
    produced in *this* process.  Module-level so fork children can run
    it."""
    base = stats_snapshot()
    generator = RandomWalkGenerator(40, seed=seed, step_sigma=0.03)
    sim = Simulator(generator, grid_size=8, scheduler=False, flight=False)
    sim.add_query(
        "igern",
        IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)), k=2),
    )
    sim.run(6)
    return stats_delta(base, stats_snapshot())


def _child_workload(seed: int, queue) -> None:
    queue.put(_run_workload(seed))


def _total(delta: dict) -> int:
    return sum(sum(group.values()) for group in delta.values())


def test_two_process_run_sums_to_single_process_totals():
    # Reference: both workloads in this process, sequentially.
    expected_a = _run_workload(11)
    expected_b = _run_workload(12)

    # Same workloads, one per forked worker.  Fork inherits the parent's
    # already-advanced singletons, which is exactly why workers must ship
    # deltas, not absolute snapshots.
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_child_workload, args=(seed, queue))
        for seed in (11, 12)
    ]
    for worker in workers:
        worker.start()
    deltas = [queue.get(timeout=60) for _ in workers]
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0

    before = stats_snapshot()
    for delta in deltas:
        merge_stats(delta)
    merged = stats_delta(before, stats_snapshot())

    combined = {
        group: {
            key: expected_a[group][key] + expected_b[group][key]
            for key in expected_a[group]
        }
        for group in expected_a
    }
    assert merged == combined
    # The workloads actually exercised the counters — a vacuous zero/zero
    # equality would not have caught the original bug.
    assert _total(merged) > 0
