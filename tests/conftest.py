"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.grid.index import GridIndex


@pytest.fixture
def rng():
    """A seeded RNG; tests stay deterministic."""
    return random.Random(1234)


@pytest.fixture
def small_grid(rng):
    """A 16x16 grid over the unit square with 120 monochromatic objects."""
    grid = GridIndex(16)
    for i in range(120):
        grid.insert(i, (rng.random(), rng.random()))
    return grid


@pytest.fixture
def bi_grid(rng):
    """A 16x16 grid with 60 A objects and 60 B objects."""
    grid = GridIndex(16)
    for i in range(120):
        category = "A" if i % 2 == 0 else "B"
        grid.insert(i, (rng.random(), rng.random()), category)
    return grid


def populate(grid: GridIndex, points, category=0, start_id=0):
    """Insert a list of (x, y) points; returns the assigned ids."""
    ids = []
    for offset, (x, y) in enumerate(points):
        oid = start_id + offset
        grid.insert(oid, (x, y), category)
        ids.append(oid)
    return ids
