"""Shared fixtures, helpers, and Hypothesis profiles for the test suite.

Two Hypothesis profiles are registered here so individual tests never
need to repeat deadline policy:

- ``dev`` (default) — no deadline: property tests share machines with
  whatever else is running, and a wall-clock deadline just makes slow
  laptops flaky;
- ``ci`` — additionally derandomized (the fuzz job owns randomized
  exploration; unit CI should be reproducible run to run) and printing
  the ``@reproduce_failure`` blob on failure.

Select explicitly with ``--hypothesis-profile=ci``; otherwise the ``CI``
environment variable decides.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.grid.index import GridIndex

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def rng():
    """A seeded RNG; tests stay deterministic."""
    return random.Random(1234)


@pytest.fixture
def small_grid(rng):
    """A 16x16 grid over the unit square with 120 monochromatic objects."""
    grid = GridIndex(16)
    for i in range(120):
        grid.insert(i, (rng.random(), rng.random()))
    return grid


@pytest.fixture
def bi_grid(rng):
    """A 16x16 grid with 60 A objects and 60 B objects."""
    grid = GridIndex(16)
    for i in range(120):
        category = "A" if i % 2 == 0 else "B"
        grid.insert(i, (rng.random(), rng.random()), category)
    return grid


def populate(grid: GridIndex, points, category=0, start_id=0):
    """Insert a list of (x, y) points; returns the assigned ids."""
    ids = []
    for offset, (x, y) in enumerate(points):
        oid = start_id + offset
        grid.insert(oid, (x, y), category)
        ids.append(oid)
    return ids
