"""Shared fixtures for the fuzz-subsystem tests."""

import math

import pytest

from repro.grid.search import GridSearch, SearchKind

_original_count_closer_than = GridSearch.count_closer_than


def leq_count_closer_than(
    self,
    center,
    threshold=None,
    exclude=(),
    category=None,
    stop_at=None,
    kind=SearchKind.UNCONSTRAINED,
    threshold_sq=None,
    threshold_point=None,
):
    """``count_closer_than`` with its strict ``<`` flipped to ``<=``.

    Nudging the squared threshold one ulp upward makes exactly-tied
    witnesses count, which is operationally the non-strict comparison —
    the planted bug the lattice scenarios are designed to expose.  The
    exact reference point is deliberately discarded: the mutant models a
    refactor that lost the exact comparison path, so the decision falls
    back to the (nudged) float threshold.
    """
    if threshold is not None:
        threshold_sq, threshold = threshold * threshold, None
    return _original_count_closer_than(
        self,
        center,
        exclude=exclude,
        category=category,
        stop_at=stop_at,
        kind=kind,
        threshold_sq=math.nextafter(threshold_sq, math.inf),
    )


@pytest.fixture
def plant_leq_mutant(monkeypatch):
    """Install the tie-semantics mutant for the duration of a test."""
    monkeypatch.setattr(GridSearch, "count_closer_than", leq_count_closer_than)
