"""Mutation smoke tests for the road-network distance mode.

The network counterpart of ``tests/fuzz/test_mutation.py``: plant a bug
in the network distance machinery, assert the differential fuzzer
catches it on the road-graph scenario window, shrink a failure, save
it, replay it deterministically, unplant, replay clean.

Two mutants, chosen deliberately:

- **Stale-entry guard flip.**  The Dijkstra kernel's lazy-deletion
  guard ``dist[u] < d`` flipped to ``<=`` discards *fresh* queue
  entries too — the very first pop (the source at distance 0.0) is
  dropped, no node is ever expanded, and almost every network distance
  collapses to the spur-only same-edge case or infinity.  The flip of
  the *relaxation* comparison, by contrast, is provably value-preserving
  (pinned in ``tests/motion/test_roadnet_metric.py``), so it is the
  guard that the mutation smoke must target.
- **Tie semantics.**  The network witness refinement counts witnesses
  *strictly* closer than the candidate's distance to the query; nudging
  the threshold one ulp upward makes exactly-tied witnesses count —
  the same open-circle mistake the lattice scenarios catch in Euclidean
  mode.  Road-graph scenarios manufacture bit-equal ties routinely:
  node-jump motion on a jitter-free street grid produces equal-hop
  left-fold sums that agree to the last bit.

The scenario window is pinned at ``start=6``: indices 6 and 7 are the
first road-graph scenarios of the seed-0 stream and both evaluate
under the network metric (verified; the stream is deterministic).
"""

import heapq
import math

from repro.fuzz.corpus import artifact_name, replay_artifact, save_artifact
from repro.fuzz.runner import run_fuzz
from repro.fuzz.shrink import shrink
from repro.grid.search import GridSearch, SearchKind
from repro.metric import STATS, NetworkMetric


def stale_guard_leq_compute_distances(self, source):
    """The engine kernel with the lazy-deletion guard flipped to ``<=``."""
    STATS.dijkstra_runs += 1
    neighbors = self.network.neighbors
    inf = math.inf
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if dist[u] <= d:  # planted: drops fresh entries too
            continue
        STATS.dijkstra_expansions += 1
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


_original_network_witness_count = GridSearch.network_witness_count


def leq_network_witness_count(
    self,
    metric,
    center,
    threshold,
    exclude=(),
    category=None,
    stop_at=None,
    kind=SearchKind.UNCONSTRAINED,
):
    """``network_witness_count`` with its strict ``<`` made non-strict.

    One ulp up on the threshold is operationally ``<=``: bit-equal ties
    — which road-graph scenarios produce on purpose — now count as
    witnesses and disqualify legitimate answers.
    """
    return _original_network_witness_count(
        self,
        metric,
        center,
        math.nextafter(threshold, math.inf),
        exclude=exclude,
        category=category,
        stop_at=stop_at,
        kind=kind,
    )


def _assert_caught_shrunk_replayable(tmp_path, monkeypatch, target, name, mutant, note):
    with monkeypatch.context() as m:
        m.setattr(target, name, mutant)

        failures = []
        report = run_fuzz(
            seed=0,
            start=6,
            max_scenarios=2,
            on_result=lambda r: failures.append(r) if not r.ok else None,
        )
        assert not report.ok
        assert report.divergences > 0
        assert failures, "fuzzer reported divergences but surfaced no result"
        # The corruption lives engine-side; the networkx oracle is
        # untouched, so the oracle lockstep layer must fire.
        kinds = {d.kind for r in failures for d in r.divergences}
        assert "oracle" in kinds
        assert all(r.scenario.metric == "network" for r in failures)

        res = failures[0]
        outcome = shrink(res.scenario, res)
        assert not outcome.result.ok
        assert outcome.objects <= len(res.scenario.script["initial"])
        assert outcome.ticks <= res.scenario.n_ticks

        path = save_artifact(
            tmp_path / artifact_name(outcome.result),
            outcome.result,
            note=note,
        )
        replay_one = replay_artifact(path)
        replay_two = replay_artifact(path)
        assert not replay_one.ok
        assert [d.describe() for d in replay_one.divergences] == [
            d.describe() for d in replay_two.divergences
        ]

    # Mutant removed: the same artifact must now pass — the divergence
    # was the mutant's, not the artifact's.
    assert replay_artifact(path).ok


def test_planted_stale_guard_mutant_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    _assert_caught_shrunk_replayable(
        tmp_path,
        monkeypatch,
        NetworkMetric,
        "compute_distances",
        stale_guard_leq_compute_distances,
        note="planted Dijkstra stale-guard <= mutant (mutation smoke test)",
    )


def test_planted_network_tie_mutant_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    _assert_caught_shrunk_replayable(
        tmp_path,
        monkeypatch,
        GridSearch,
        "network_witness_count",
        leq_network_witness_count,
        note="planted non-strict network witness comparison (mutation smoke test)",
    )
