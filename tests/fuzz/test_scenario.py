"""Scenario generation: determinism, coverage, scripting, round-trips."""

from repro.fuzz.scenario import (
    EXTENTS,
    GRID_SIZES,
    MOTIONS,
    LatticeJumpGenerator,
    Scenario,
    ScriptedWorkload,
    generate_scenarios,
    make_scenario,
    query_id_of,
    scripted,
)


class TestSampling:
    def test_deterministic_in_seed_and_index(self):
        for index in range(10):
            assert make_scenario(7, index).to_dict() == make_scenario(7, index).to_dict()

    def test_different_seeds_differ(self):
        a = [make_scenario(0, i).to_dict() for i in range(12)]
        b = [make_scenario(1, i).to_dict() for i in range(12)]
        assert a != b

    def test_mode_and_motion_window_coverage(self):
        """Any contiguous window of 2*len(MOTIONS) covers every combo."""
        window = 2 * len(MOTIONS)
        for start in (0, 5):
            combos = {
                (sc.mode, sc.motion)
                for sc in (make_scenario(0, start + i) for i in range(window))
            }
            assert combos == {
                (mode, motion) for mode in ("mono", "bi") for motion in MOTIONS
            }

    def test_dimensions_within_domains(self):
        for i in range(40):
            sc = make_scenario(3, i)
            assert sc.mode in ("mono", "bi")
            assert sc.k in (1, 2, 3)
            assert sc.grid_size in GRID_SIZES
            assert sc.extent in EXTENTS
            assert 12 <= sc.n_objects <= 80
            assert 4 <= sc.n_ticks <= 10
            if sc.motion == "churn":
                assert not sc.moving_query
            if not sc.moving_query:
                assert sc.query_point is not None

    def test_generate_scenarios_respects_start(self):
        gen = generate_scenarios(5, start=17)
        assert next(gen).index == 17
        assert next(gen).index == 18


class TestScripting:
    def test_scripted_is_idempotent_and_replayable(self):
        sc = scripted(make_scenario(0, 0))
        assert sc.script is not None
        assert scripted(sc) is sc
        assert len(sc.script["ticks"]) == sc.n_ticks

    def test_scripted_round_trips_through_json_dict(self):
        sc = scripted(make_scenario(0, 3))
        clone = Scenario.from_dict(sc.to_dict())
        assert clone.to_dict() == sc.to_dict()

    def test_query_resolution(self):
        """A moving query binds to a surviving id; a fixed one to a point."""
        for i in range(24):
            sc = scripted(make_scenario(2, i))
            if sc.moving_query:
                qid = query_id_of(sc)
                assert qid is not None
                removed = {
                    oid
                    for tick in sc.script["ticks"]
                    for oid in tick.get("removes", ())
                }
                assert qid not in removed
                if sc.mode == "bi":
                    cats = {oid: cat for oid, _, _, cat in sc.script["initial"]}
                    assert cats[qid] == "A"
            else:
                assert sc.query_point is not None

    def test_scripted_workload_replays_and_goes_quiet(self):
        sc = scripted(make_scenario(0, 8))
        workload = ScriptedWorkload(sc.script)
        assert [
            (oid, p.x, p.y, cat) for oid, p, cat in workload.initial()
        ] == [tuple(rec) for rec in sc.script["initial"]]
        for tick in sc.script["ticks"]:
            events = workload.step_events(1.0)
            assert [[oid, p.x, p.y] for oid, p in events.moves] == tick["moves"]
            assert events.removes == tick["removes"]
        quiet = workload.step_events(1.0)
        assert quiet.moves == [] and quiet.inserts == [] and quiet.removes == []


class TestLatticeGenerator:
    def test_positions_are_exact_lattice_nodes(self):
        gen = LatticeJumpGenerator(30, seed=4, lattice=8)
        nodes = {
            (gen.node_point(ix, iy).x, gen.node_point(ix, iy).y)
            for ix in range(9)
            for iy in range(9)
        }
        for _, pos, _ in gen.initial():
            assert (pos.x, pos.y) in nodes
        for _ in range(5):
            for _, pos in gen.step(1.0):
                assert (pos.x, pos.y) in nodes

    def test_lattice_manufactures_coincidences(self):
        """The adversarial point: distinct objects share exact positions."""
        gen = LatticeJumpGenerator(60, seed=0, lattice=8)
        positions = [(p.x, p.y) for _, p, _ in gen.initial()]
        assert len(set(positions)) < len(positions)
