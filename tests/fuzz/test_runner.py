"""Differential runner: lockstep execution, reporting, obs counters."""

import pytest

from repro import obs
from repro.fuzz.runner import Divergence, FuzzReport, run_fuzz, run_scenario
from repro.fuzz.scenario import Scenario, make_scenario


def _tiny_scenario(mode="mono", k=1, baseline=None, script=None):
    return Scenario(
        seed=0,
        index=0,
        mode=mode,
        k=k,
        grid_size=4,
        extent=(0.0, 0.0, 1.0, 1.0),
        motion="walk",
        n_objects=3,
        n_ticks=2,
        move_fraction=1.0,
        a_fraction=0.5,
        moving_query=False,
        query_point=(0.5, 0.5),
        baseline=baseline,
        script=script,
    )


class TestRunScenario:
    def test_clean_scenario_is_ok_and_scripted(self):
        sc = _tiny_scenario(
            script={
                "initial": [[0, 0.2, 0.2, 0], [1, 0.8, 0.8, 0], [2, 0.4, 0.6, 0]],
                "ticks": [
                    {"moves": [[0, 0.3, 0.3]], "inserts": [], "removes": []},
                    {"moves": [[1, 0.7, 0.1]], "inserts": [], "removes": []},
                ],
            }
        )
        result = run_scenario(sc)
        assert result.ok
        assert result.ticks == 2
        assert result.scenario.script is not None

    def test_result_is_deterministic(self):
        sc = make_scenario(0, 0)
        one = run_scenario(sc)
        two = run_scenario(sc)
        assert one.scenario.to_dict() == two.scenario.to_dict()
        assert [d.to_dict() for d in one.divergences] == [
            d.to_dict() for d in two.divergences
        ]

    def test_obs_counters_published(self):
        _, registry = obs.enable()
        try:
            before = registry.counter("fuzz_scenarios_total").value
            run_scenario(make_scenario(0, 0))
            assert registry.counter("fuzz_scenarios_total").value == before + 1
        finally:
            obs.disable(clear=True)


class TestDivergence:
    def test_round_trip_and_describe(self):
        div = Divergence(
            kind="oracle",
            tick=3,
            name="igern",
            expected=[1, 2],
            actual=[1],
            detail="answer mismatch",
        )
        assert Divergence.from_dict(div.to_dict()) == div
        text = div.describe()
        assert "[oracle]" in text and "tick 3" in text and "igern" in text


class TestFuzzReport:
    def test_record_tracks_coverage_and_failures(self):
        report = FuzzReport(seed=0)
        ok = run_scenario(make_scenario(0, 0))
        report.record(ok)
        assert report.scenarios == 1
        assert report.ok
        bad = run_scenario(make_scenario(0, 1))
        bad.divergences.append(
            Divergence(kind="oracle", tick=0, name="igern", expected=[], actual=[1])
        )
        report.record(bad)
        assert not report.ok
        assert report.divergences == 1
        assert report.coverage["mode"] == {"mono": 1, "bi": 1}
        summary = report.summary()
        assert "2 scenarios" in summary
        assert "FAIL" in summary


class TestRunFuzz:
    def test_requires_some_budget(self):
        with pytest.raises(ValueError):
            run_fuzz(seed=0)

    def test_short_run_is_clean_and_covers_both_modes(self):
        report = run_fuzz(seed=0, max_scenarios=4)
        assert report.ok
        assert report.scenarios == 4
        assert set(report.coverage["mode"]) == {"mono", "bi"}

    def test_zero_time_budget_runs_nothing(self):
        ticks = iter([0.0, 1.0, 2.0, 3.0])
        report = run_fuzz(seed=0, budget_seconds=0.5, clock=lambda: next(ticks))
        assert report.scenarios == 0
