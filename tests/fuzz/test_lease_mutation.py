"""Mutation smoke tests for safe-region answer leases.

Plant a bug in the lease derivation, assert the differential fuzzer's
lease lockstep layer catches it, shrink the failure, save it, replay it
deterministically, unplant, replay clean — the lease counterpart of
``tests/fuzz/test_mutation.py`` and ``test_network_mutation.py``.

Two mutants, chosen deliberately:

- **Guard sign flip.**  ``SLACK_GUARD_REL`` negated turns the rounding
  guard that *shaves* every slack into ulp-scale *widening*: a bit-equal
  tie — raw slack exactly zero, where any nonzero motion can flip the
  answer and the only sound lease is none — now yields a tiny-budget
  lease that certifies a flippable answer.
- **Witness-slab drop.**  Removing the four ``|x - qx| <= s`` /
  ``|y - qy| <= s`` slab planes from the safe region leaves only the
  inward-offset bisectors, which do not bound the query's displacement
  along a bisector-parallel direction — the region no longer implies
  the ``eps`` bound the slack argument needs, so a query sliding along
  the corridor keeps a lease whose answer is long stale.

Randomly generated fuzz scenarios cannot see either mutant: their
displacements are enormous next to the mutants' bogus budgets, so every
mutant lease still breaks before certifying anything wrong.  The
targets are therefore two *handcrafted* boundary scenarios — an exact
bit-equal tie nudged by 1e-15, and a query walking out through the slab
corridor — built here and committed (clean) to ``tests/fuzz_corpus/``
as permanent lease-boundary regression entries.
"""

import repro.leases as leases
from repro.fuzz.corpus import artifact_name, replay_artifact, save_artifact
from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import Scenario
from repro.fuzz.shrink import shrink


def tie_boundary_scenario() -> Scenario:
    """A bit-equal witness tie, then a 1e-15 nudge that breaks it.

    ``dist(o1, q) == dist(o1, w) == 0.25`` exactly (lattice
    coordinates), so ``o1`` is an answer under strict-``<`` witness
    semantics with *zero* slack: the sound derivation must refuse a
    lease.  The tick moves the witness by ``1e-15`` — far inside any
    ulp-scale bogus budget — and flips ``o1`` out of the answer.
    """
    script = {
        "initial": [[1, 0.25, 0.5, 0], [2, 0.0, 0.5, 0]],
        "ticks": [{"moves": [[2, 1e-15, 0.5]], "inserts": [], "removes": []}],
        "query_id": None,
    }
    return Scenario(
        seed=0,
        index=0,
        mode="mono",
        k=1,
        grid_size=8,
        extent=(0.0, 0.0, 1.0, 1.0),
        motion="lattice",
        n_objects=2,
        n_ticks=1,
        move_fraction=0.5,
        a_fraction=1.0,
        moving_query=False,
        query_point=(0.5, 0.5),
        baseline=None,
        script=script,
    )


def slab_exit_scenario() -> Scenario:
    """A moving query that leaves the safe region through the slabs.

    Two answer objects flank the query on the x axis, so the offset
    bisectors bound only ``x`` and the witness slabs are the *sole*
    constraint on ``y``.  The tick slides the query far along ``y``
    (region exit, answer empties) while every actual data object holds
    still — exactly the motion a slab-less region wrongly admits.
    """
    script = {
        "initial": [
            [0, 0.5, 0.5, 0],
            [1, 0.45, 0.5, 0],
            [2, 0.55, 0.5, 0],
        ],
        "ticks": [{"moves": [[0, 0.5, 0.7]], "inserts": [], "removes": []}],
        "query_id": 0,
    }
    return Scenario(
        seed=0,
        index=1,
        mode="mono",
        k=1,
        grid_size=8,
        extent=(0.0, 0.0, 1.0, 1.0),
        motion="walk",
        n_objects=3,
        n_ticks=1,
        move_fraction=0.34,
        a_fraction=1.0,
        moving_query=True,
        query_point=None,
        baseline=None,
        script=script,
    )


_original_region_planes = leases._region_planes


def _region_planes_without_slabs(halfplanes, qpos, eps, m):
    """The region builder with the four witness-margin slabs dropped."""
    planes, sources = _original_region_planes(halfplanes, qpos, eps, m)
    if planes is not None:
        planes = planes[:-4]
    return planes, sources


def _assert_caught_shrunk_replayable(tmp_path, monkeypatch, scenario, plant, note):
    with monkeypatch.context() as m:
        plant(m)

        result = run_scenario(scenario)
        assert not result.ok, "planted lease mutant went uncaught"
        kinds = {d.kind for d in result.divergences}
        assert "lease" in kinds
        assert result.lease_stats["held"] > 0, (
            "the mutant lease was never held — the scenario exercised"
            " nothing"
        )

        outcome = shrink(result.scenario, result)
        assert not outcome.result.ok
        assert outcome.objects <= len(result.scenario.script["initial"])
        assert outcome.ticks <= result.scenario.n_ticks

        path = save_artifact(
            tmp_path / artifact_name(outcome.result), outcome.result, note=note
        )
        replay_one = replay_artifact(path)
        replay_two = replay_artifact(path)
        assert not replay_one.ok
        assert [d.describe() for d in replay_one.divergences] == [
            d.describe() for d in replay_two.divergences
        ]

    # Mutant removed: the same artifact must now pass — the divergence
    # was the mutant's, not the scenario's.
    assert replay_artifact(path).ok


def test_planted_guard_flip_mutant_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    _assert_caught_shrunk_replayable(
        tmp_path,
        monkeypatch,
        tie_boundary_scenario(),
        lambda m: m.setattr(leases, "SLACK_GUARD_REL", -1e-13),
        note="planted negated slack guard: bit-equal tie leased (mutation smoke test)",
    )


def test_planted_slab_drop_mutant_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    _assert_caught_shrunk_replayable(
        tmp_path,
        monkeypatch,
        slab_exit_scenario(),
        lambda m: m.setattr(leases, "_region_planes", _region_planes_without_slabs),
        note="planted slab-less safe region: query escape leased (mutation smoke test)",
    )


class TestBoundaryScenariosAreCleanUnmutated:
    """The handcrafted scenarios themselves are sound lease-boundary
    regressions: the tie refuses a lease, the slab exit breaks one, and
    both replay with zero divergences.  Their committed corpus twins
    (``tests/fuzz_corpus/mono-*lease*.json``) are held to the same bar
    by the corpus replay test."""

    def test_tie_boundary_refuses_lease_and_stays_clean(self):
        result = run_scenario(tie_boundary_scenario())
        assert result.ok, [d.describe() for d in result.divergences]
        assert result.lease_stats["issued"] == 0

    def test_slab_exit_breaks_lease_and_stays_clean(self):
        result = run_scenario(slab_exit_scenario())
        assert result.ok, [d.describe() for d in result.divergences]
        assert result.lease_stats["issued"] > 0
        assert result.lease_stats["broken"] > 0
