"""Shrinker: error paths plus real minimization under a planted bug."""

import pytest

from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import make_scenario, scripted
from repro.fuzz.shrink import shrink


class TestErrorPaths:
    def test_rejects_unscripted_scenario(self):
        with pytest.raises(ValueError, match="scripted"):
            shrink(make_scenario(0, 0))

    def test_rejects_non_diverging_scenario(self):
        sc = scripted(make_scenario(0, 0))
        with pytest.raises(ValueError, match="does not diverge"):
            shrink(sc)


class TestMinimization:
    def test_shrinks_a_real_failure(self, plant_leq_mutant):
        """Scenario 10 of stream 0 is the first lattice run; under the
        ``<=`` mutant it diverges with ~80 objects, and the shrinker
        should cut that down by an order of magnitude."""
        sc = make_scenario(0, 10)
        result = run_scenario(sc)
        assert not result.ok

        outcome = shrink(result.scenario, result)
        assert not outcome.result.ok
        assert outcome.original_objects == len(result.scenario.script["initial"])
        assert outcome.objects < outcome.original_objects
        assert outcome.ticks <= outcome.original_ticks
        assert outcome.runs <= 300

        # The minimized scenario reproduces on a fresh run, byte-for-byte.
        again = run_scenario(outcome.scenario)
        assert [d.to_dict() for d in again.divergences] == [
            d.to_dict() for d in outcome.result.divergences
        ]
