"""Artifacts and the committed regression corpus.

The corpus replay test at the bottom is the tier-1 guard: every artifact
under ``tests/fuzz_corpus/`` is a scenario that once exposed a real bug,
and replaying it differentially must stay clean forever.
"""

import json

import pytest

from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    Artifact,
    artifact_name,
    corpus_entries,
    load_artifact,
    replay_artifact,
    replay_corpus,
    save_artifact,
)
from repro.fuzz.runner import Divergence, run_scenario
from repro.fuzz.scenario import make_scenario


class TestArtifacts:
    def test_save_and_load_round_trip(self, tmp_path):
        result = run_scenario(make_scenario(0, 0))
        result.divergences.append(
            Divergence(kind="oracle", tick=1, name="igern", expected=[1], actual=[])
        )
        path = save_artifact(tmp_path / "one.json", result, note="round trip")
        artifact = load_artifact(path)
        assert artifact.note == "round trip"
        assert artifact.scenario.to_dict() == result.scenario.to_dict()
        assert [d.to_dict() for d in artifact.divergences] == [
            d.to_dict() for d in result.divergences
        ]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="no 'scenario' key"):
            load_artifact(path)

    def test_artifact_name_encodes_scenario_and_kind(self):
        result = run_scenario(make_scenario(0, 0))
        assert artifact_name(result).endswith("-regression.json")
        result.divergences.append(
            Divergence(kind="oracle", tick=0, name="igern", expected=[], actual=[])
        )
        name = artifact_name(result)
        sc = result.scenario
        assert name == f"{sc.mode}-{sc.motion}-k{sc.k}-s0i0-oracle.json"

    def test_replay_artifact_reruns_fresh(self, tmp_path):
        result = run_scenario(make_scenario(0, 0))
        path = save_artifact(tmp_path / "clean.json", result)
        assert replay_artifact(path).ok

    def test_corpus_entries_of_missing_directory(self, tmp_path):
        assert corpus_entries(tmp_path / "nope") == []


class TestCommittedCorpus:
    def test_corpus_is_populated(self):
        assert len(corpus_entries()) >= 2

    def test_every_corpus_entry_replays_clean(self):
        """Tier-1 regression replay of the committed failure corpus."""
        results = replay_corpus(DEFAULT_CORPUS_DIR)
        assert results
        bad = {
            path.name: [d.describe() for d in result.divergences]
            for path, result in results
            if not result.ok
        }
        assert not bad, f"corpus regressions: {bad}"

    def test_corpus_entries_document_their_bug(self):
        for path in corpus_entries():
            assert load_artifact(path).note, f"{path.name} has no note"
