"""Mutation smoke tests: the fuzzer must catch planted bugs.

Two mutants, one per harness layer:

- **Tie semantics.**  The verification primitive counts witnesses
  *strictly* closer than the candidate-to-query distance; an equidistant
  object must not disqualify a reverse nearest neighbor (the paper's
  open-circle semantics).  Flipping that ``<`` to ``<=`` is the classic
  off-by-an-ulp mistake, and the lattice scenarios exist precisely to
  supply exact ties.
- **Probe signature.**  The shared tick context carries an exclusion
  signature through every witness probe — it is both a memo-key
  component and the probe's exclusion set.  The planted mutant drops it
  (what a refactor deriving the exclusions from a truncated key would
  produce): probes collide across batched queries *and* stop excluding
  the candidate itself, which then counts as its own witness.  Only the
  batch participant of the four-way lockstep is corrupted, so the
  ``batch`` divergence kind must fire.  (A key-only drop is provably
  masked today — see the soundness notes in ``repro/grid/context.py``.)

Each test plants its mutant and asserts the whole pipeline reacts: a
short fuzz run reports divergences, the shrinker minimizes one, and the
saved artifact replays deterministically (failing under the mutant,
passing once it is removed).
"""

from repro.fuzz.corpus import artifact_name, replay_artifact, save_artifact
from repro.fuzz.runner import run_fuzz
from repro.fuzz.shrink import shrink
from repro.grid.context import SharedTickContext
from repro.grid.search import GridSearch


def test_planted_mutant_caught_shrunk_and_replayable(tmp_path, monkeypatch):
    from tests.fuzz.conftest import leq_count_closer_than

    with monkeypatch.context() as m:
        m.setattr(GridSearch, "count_closer_than", leq_count_closer_than)

        failures = []
        report = run_fuzz(
            seed=0,
            max_scenarios=12,
            on_result=lambda r: failures.append(r) if not r.ok else None,
        )
        assert not report.ok
        assert report.divergences > 0
        assert failures, "fuzzer reported divergences but surfaced no result"

        res = failures[0]
        outcome = shrink(res.scenario, res)
        assert not outcome.result.ok
        assert outcome.objects <= len(res.scenario.script["initial"])
        assert outcome.ticks <= res.scenario.n_ticks

        path = save_artifact(
            tmp_path / artifact_name(outcome.result),
            outcome.result,
            note="planted <= mutant (mutation smoke test)",
        )
        replay_one = replay_artifact(path)
        replay_two = replay_artifact(path)
        assert not replay_one.ok
        assert [d.describe() for d in replay_one.divergences] == [
            d.describe() for d in replay_two.divergences
        ]

    # Mutant removed: the same artifact must now pass — the divergence
    # was the mutant's, not the artifact's.
    assert replay_artifact(path).ok


_original_witness_count = SharedTickContext.witness_count


def _signatureless_witness_count(
    self, search, oid, center, threshold_sq, signature, category, k,
    threshold_ref=None,
):
    """The planted probe-cache bug: the exclusion signature is dropped —
    from the memo key (probes collide across queries) and from the probe
    itself (the candidate is no longer excluded and self-witnesses)."""
    return _original_witness_count(
        self, search, oid, center, threshold_sq, frozenset(), category, k,
        threshold_ref=threshold_ref,
    )


def test_planted_probe_signature_mutant_caught_shrunk_and_replayable(
    tmp_path, monkeypatch
):
    with monkeypatch.context() as m:
        m.setattr(
            SharedTickContext, "witness_count", _signatureless_witness_count
        )

        failures = []
        report = run_fuzz(
            seed=0,
            max_scenarios=12,
            on_result=lambda r: failures.append(r) if not r.ok else None,
        )
        assert not report.ok
        assert report.divergences > 0
        assert failures, "fuzzer reported divergences but surfaced no result"
        # The corruption lives in the shared context, which only the
        # batch participant uses: the batch lockstep layer must be the
        # one that fires.
        kinds = {d.kind for r in failures for d in r.divergences}
        assert "batch" in kinds

        res = failures[0]
        outcome = shrink(res.scenario, res)
        assert not outcome.result.ok
        assert outcome.objects <= len(res.scenario.script["initial"])
        assert outcome.ticks <= res.scenario.n_ticks

        path = save_artifact(
            tmp_path / artifact_name(outcome.result),
            outcome.result,
            note="planted signature-less witness probe (mutation smoke test)",
        )
        replay_one = replay_artifact(path)
        replay_two = replay_artifact(path)
        assert not replay_one.ok
        assert [d.describe() for d in replay_one.divergences] == [
            d.describe() for d in replay_two.divergences
        ]

    # Mutant removed: the same artifact must now pass.
    assert replay_artifact(path).ok
