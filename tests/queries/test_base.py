"""Unit tests for the executor base plumbing."""

import pytest

from repro.geometry.point import Point
from repro.grid.index import GridIndex
from repro.queries.base import QueryPosition


class TestQueryPosition:
    def test_requires_exactly_one_source(self):
        grid = GridIndex(8)
        with pytest.raises(ValueError):
            QueryPosition(grid)
        grid.insert(1, (0.5, 0.5))
        with pytest.raises(ValueError):
            QueryPosition(grid, query_id=1, fixed=(0.5, 0.5))

    def test_fixed_position(self):
        grid = GridIndex(8)
        pos = QueryPosition(grid, fixed=(0.3, 0.7))
        assert pos.current() == Point(0.3, 0.7)
        assert pos.query_id is None

    def test_tracks_moving_object(self):
        grid = GridIndex(8)
        grid.insert(1, (0.1, 0.1))
        pos = QueryPosition(grid, query_id=1)
        assert pos.current() == Point(0.1, 0.1)
        grid.move(1, (0.9, 0.9))
        assert pos.current() == Point(0.9, 0.9)

    def test_missing_object_raises_on_access(self):
        grid = GridIndex(8)
        pos = QueryPosition(grid, query_id="ghost")
        with pytest.raises(KeyError):
            pos.current()
