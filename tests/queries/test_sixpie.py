"""Tests for the six-pie snapshot baseline."""

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.grid.search import SearchKind
from repro.queries import BruteForceMonoQuery, QueryPosition, SixPieSnapshotQuery


class TestSixPieSnapshot:
    def test_pie_count_validation(self):
        sim = build_simulator(WorkloadSpec(n_objects=50, grid_size=8, seed=1))
        qid = central_object(sim)
        with pytest.raises(ValueError):
            SixPieSnapshotQuery(
                sim.grid, QueryPosition(sim.grid, query_id=qid), n_pies=5
            )

    def test_matches_brute_force_continuously(self):
        sim = build_simulator(WorkloadSpec(n_objects=500, grid_size=16, seed=61))
        qid = central_object(sim)
        sim.add_query(
            "sixpie", SixPieSnapshotQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        )
        sim.add_query(
            "brute", BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        )
        result = sim.run(12)
        for t in range(13):
            assert (
                result["sixpie"].ticks[t].answer == result["brute"].ticks[t].answer
            ), f"diverged at tick {t}"

    def test_is_stateless(self):
        sim = build_simulator(WorkloadSpec(n_objects=300, grid_size=16, seed=62))
        qid = central_object(sim)
        query = SixPieSnapshotQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        sim.add_query("sixpie", query)
        sim.run(3)
        assert query.monitored_count == 0

    def test_uses_constrained_searches_every_tick(self):
        """Snapshot cost structure: n_pies constrained searches per tick,
        never a bounded one (no state to bound by)."""
        sim = build_simulator(WorkloadSpec(n_objects=300, grid_size=16, seed=63))
        qid = central_object(sim)
        query = SixPieSnapshotQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        sim.add_query("sixpie", query)
        n_ticks = 4
        sim.run(n_ticks)
        stats = query.search.stats
        assert stats.calls[SearchKind.CONSTRAINED] == 6 * (n_ticks + 1)
        assert stats.calls[SearchKind.BOUNDED] == 0

    def test_at_most_six_answers(self):
        sim = build_simulator(WorkloadSpec(n_objects=400, grid_size=16, seed=64))
        qid = central_object(sim)
        sim.add_query(
            "sixpie", SixPieSnapshotQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        )
        result = sim.run(8)
        for t in result["sixpie"].ticks:
            assert t.answer_size <= 6
