"""Unit tests for the brute-force oracles themselves."""

import pytest

from repro.queries.brute import brute_bi_rnn, brute_mono_rnn


class TestBruteMono:
    def test_empty(self):
        assert brute_mono_rnn({}, (0.5, 0.5)) == set()

    def test_single_object(self):
        assert brute_mono_rnn({1: (0.1, 0.1)}, (0.5, 0.5)) == {1}

    def test_pair_blocks_each_other(self):
        positions = {1: (0.9, 0.9), 2: (0.91, 0.9)}
        assert brute_mono_rnn(positions, (0.1, 0.1)) == set()

    def test_query_id_excluded(self):
        positions = {"q": (0.5, 0.5), 1: (0.6, 0.5)}
        assert brute_mono_rnn(positions, (0.5, 0.5), query_id="q") == {1}

    def test_strict_tie_semantics(self):
        # Object 2 is exactly equidistant between the query and object 1:
        # no object is STRICTLY closer, so 2 is still an RNN.
        positions = {1: (1.0, 0.0), 2: (0.5, 0.0)}
        answer = brute_mono_rnn(positions, (0.0, 0.0))
        assert 2 in answer

    def test_k_semantics(self):
        positions = {1: (0.5, 0.1), 2: (0.5, 0.12), 3: (0.5, 0.14)}
        q = (0.5, 0.5)
        # Each object has 2 others far closer than q.
        assert brute_mono_rnn(positions, q, k=1) == set()
        assert brute_mono_rnn(positions, q, k=2) == set()
        assert brute_mono_rnn(positions, q, k=3) == {1, 2, 3}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            brute_mono_rnn({}, (0, 0), k=0)


class TestBruteBi:
    def test_empty_b(self):
        assert brute_bi_rnn({1: (0.1, 0.1)}, {}, (0.5, 0.5)) == set()

    def test_no_a_competitors(self):
        assert brute_bi_rnn({}, {1: (0.9, 0.9)}, (0.5, 0.5)) == {1}

    def test_split_by_competitor(self):
        a = {"rival": (1.0, 0.0)}
        b = {"near": (0.3, 0.0), "far": (0.8, 0.0)}
        assert brute_bi_rnn(a, b, (0.0, 0.0)) == {"near"}

    def test_query_id_not_a_competitor(self):
        a = {"q": (0.0, 0.0), "rival": (1.0, 0.0)}
        b = {"x": (0.3, 0.0)}
        assert brute_bi_rnn(a, b, (0.0, 0.0), query_id="q") == {"x"}

    def test_equidistant_a_does_not_steal(self):
        a = {"rival": (1.0, 0.0)}
        b = {"mid": (0.5, 0.0)}
        assert brute_bi_rnn(a, b, (0.0, 0.0)) == {"mid"}
