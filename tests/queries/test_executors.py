"""Cross-algorithm executor tests: every executor must agree with the
brute-force oracle on a shared moving workload (the operational form of
the paper's correctness theorems for the baselines as well)."""

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.queries import (
    BruteForceBiQuery,
    BruteForceMonoQuery,
    CRNNQuery,
    IGERNBiQuery,
    IGERNMonoQuery,
    QueryPosition,
    TPLQuery,
    VoronoiRepeatQuery,
)

TICKS = 12


@pytest.fixture(scope="module")
def mono_run():
    spec = WorkloadSpec(n_objects=600, grid_size=32, seed=21)
    sim = build_simulator(spec)
    qid = central_object(sim)

    def pos():
        return QueryPosition(sim.grid, query_id=qid)

    sim.add_query("igern", IGERNMonoQuery(sim.grid, pos()))
    sim.add_query("crnn", CRNNQuery(sim.grid, pos()))
    sim.add_query("tpl", TPLQuery(sim.grid, pos()))
    sim.add_query("brute", BruteForceMonoQuery(sim.grid, pos()))
    return sim.run(TICKS)


@pytest.fixture(scope="module")
def bi_run():
    spec = WorkloadSpec(n_objects=600, grid_size=32, seed=22, bichromatic=True)
    sim = build_simulator(spec)
    qid = central_object(sim, "A")

    def pos():
        return QueryPosition(sim.grid, query_id=qid)

    sim.add_query("igern", IGERNBiQuery(sim.grid, pos()))
    sim.add_query("voronoi", VoronoiRepeatQuery(sim.grid, pos()))
    sim.add_query("brute", BruteForceBiQuery(sim.grid, pos()))
    return sim.run(TICKS)


class TestMonoExecutorsAgree:
    @pytest.mark.parametrize("name", ["igern", "crnn", "tpl"])
    def test_matches_brute_every_tick(self, mono_run, name):
        for t in range(TICKS + 1):
            got = mono_run[name].ticks[t].answer
            expected = mono_run["brute"].ticks[t].answer
            assert got == expected, f"{name} diverged at tick {t}"

    def test_igern_monitors_fewer_than_crnn_regions(self, mono_run):
        # CRNN always owns six regions; IGERN a single one.
        assert all(m.monitored <= 6 for m in mono_run["crnn"].ticks)

    def test_tpl_is_stateless(self, mono_run):
        assert all(m.monitored == 0 for m in mono_run["tpl"].ticks)


class TestBiExecutorsAgree:
    @pytest.mark.parametrize("name", ["igern", "voronoi"])
    def test_matches_brute_every_tick(self, bi_run, name):
        for t in range(TICKS + 1):
            got = bi_run[name].ticks[t].answer
            expected = bi_run["brute"].ticks[t].answer
            assert got == expected, f"{name} diverged at tick {t}"

    def test_voronoi_is_stateless(self, bi_run):
        assert all(m.monitored == 0 for m in bi_run["voronoi"].ticks)

    def test_igern_reports_monitored_objects(self, bi_run):
        assert any(m.monitored > 0 for m in bi_run["igern"].ticks)


class TestCRNNSpecifics:
    def test_pie_count_validation(self):
        spec = WorkloadSpec(n_objects=50, grid_size=8, seed=1)
        sim = build_simulator(spec)
        qid = central_object(sim)
        with pytest.raises(ValueError):
            CRNNQuery(sim.grid, QueryPosition(sim.grid, query_id=qid), n_pies=4)

    def test_more_pies_still_correct(self):
        spec = WorkloadSpec(n_objects=400, grid_size=16, seed=33)
        sim = build_simulator(spec)
        qid = central_object(sim)
        sim.add_query(
            "crnn8",
            CRNNQuery(sim.grid, QueryPosition(sim.grid, query_id=qid), n_pies=8),
        )
        sim.add_query(
            "brute", BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        )
        res = sim.run(8)
        for t in range(9):
            assert res["crnn8"].ticks[t].answer == res["brute"].ticks[t].answer

    def test_static_query_uses_bounded_searches(self):
        """With a fixed query point, later ticks use the bounded path."""
        from repro.grid.search import SearchKind

        spec = WorkloadSpec(n_objects=400, grid_size=16, seed=3)
        sim = build_simulator(spec)
        query = CRNNQuery(sim.grid, QueryPosition(sim.grid, fixed=(0.5, 0.5)))
        sim.add_query("crnn", query)
        sim.run(5)
        assert query.search.stats.calls[SearchKind.BOUNDED] > 0


class TestVoronoiSpecifics:
    def test_reports_retrieved_neighbors(self):
        spec = WorkloadSpec(n_objects=400, grid_size=16, seed=5, bichromatic=True)
        sim = build_simulator(spec)
        qid = central_object(sim, "A")
        query = VoronoiRepeatQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        sim.add_query("voronoi", query)
        sim.run(3)
        assert query.last_neighbors > 0
