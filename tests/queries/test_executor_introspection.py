"""Executor-level introspection: reports, region metrics, areas."""

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.queries import (
    CRNNQuery,
    IGERNBiQuery,
    IGERNMonoQuery,
    QueryPosition,
)


@pytest.fixture()
def mono_setup():
    sim = build_simulator(WorkloadSpec(n_objects=600, grid_size=32, seed=41))
    qid = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    crnn = CRNNQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    sim.add_query("igern", query)
    sim.add_query("crnn", crnn)
    return sim, query, crnn


class TestMonoIntrospection:
    def test_before_initial(self, mono_setup):
        _, query, _ = mono_setup
        assert query.monitored_count == 0
        assert query.monitored_region_cells == 0
        assert query.monitored_area() == 1.0

    def test_after_running(self, mono_setup):
        sim, query, crnn = mono_setup
        sim.run(5)
        assert query.monitored_count > 0
        assert query.monitored_region_cells > 0
        assert 0.0 < query.monitored_area() < 1.0
        assert query.last_report is not None
        assert query.last_report.answer == query.answer

    def test_area_comparison_with_crnn(self, mono_setup):
        sim, query, crnn = mono_setup
        sim.run(5)
        assert query.monitored_area() < crnn.monitored_area()

    def test_crnn_area_open_ended_without_candidates(self):
        from repro.grid.index import GridIndex

        grid = GridIndex(8)
        grid.insert("only", (0.5, 0.5))
        crnn = CRNNQuery(grid, QueryPosition(grid, query_id="only"))
        crnn.initial()
        # No candidates in any pie: every region is open-ended.
        assert crnn.monitored_area() == pytest.approx(1.0)


class TestBiIntrospection:
    def test_area_defined_after_run(self):
        sim = build_simulator(
            WorkloadSpec(n_objects=600, grid_size=32, seed=42, bichromatic=True)
        )
        qid = central_object(sim, "A")
        query = IGERNBiQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        sim.add_query("bi", query)
        assert query.monitored_area() == 1.0
        sim.run(5)
        assert 0.0 < query.monitored_area() < 1.0
        assert query.last_report is not None
