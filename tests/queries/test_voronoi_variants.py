"""Tests for the two Voronoi-baseline construction methods."""

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.queries import BruteForceBiQuery, QueryPosition, VoronoiRepeatQuery


class TestVariants:
    def test_unknown_method_rejected(self):
        sim = build_simulator(WorkloadSpec(n_objects=50, grid_size=8, seed=1, bichromatic=True))
        qid = central_object(sim, "A")
        with pytest.raises(ValueError):
            VoronoiRepeatQuery(
                sim.grid, QueryPosition(sim.grid, query_id=qid), method="magic"
            )

    @pytest.mark.parametrize("method", ["classic", "pruned"])
    def test_both_methods_correct(self, method):
        sim = build_simulator(
            WorkloadSpec(n_objects=500, grid_size=16, seed=44, bichromatic=True)
        )
        qid = central_object(sim, "A")
        sim.add_query(
            "voronoi",
            VoronoiRepeatQuery(
                sim.grid, QueryPosition(sim.grid, query_id=qid), method=method
            ),
        )
        sim.add_query(
            "brute", BruteForceBiQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        )
        result = sim.run(10)
        for t in range(11):
            assert (
                result["voronoi"].ticks[t].answer == result["brute"].ticks[t].answer
            ), f"{method} diverged at tick {t}"

    def test_both_report_neighbors(self):
        sim = build_simulator(
            WorkloadSpec(n_objects=500, grid_size=16, seed=45, bichromatic=True)
        )
        qid = central_object(sim, "A")
        classic = VoronoiRepeatQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
        pruned = VoronoiRepeatQuery(
            sim.grid, QueryPosition(sim.grid, query_id=qid), method="pruned"
        )
        sim.add_query("classic", classic)
        sim.add_query("pruned", pruned)
        sim.run(3)
        assert classic.last_neighbors > 0
        assert pruned.last_neighbors > 0
        # The classical 2R construction retrieves at least as many
        # neighbors as the grid-pruned one.
        assert classic.last_neighbors >= pruned.last_neighbors
