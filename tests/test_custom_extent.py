"""End-to-end correctness on non-unit, non-square data spaces.

Everything in the library is supposed to work on an arbitrary rectangular
extent (the unit square is just the workload generators' default); these
tests run the full algorithms on a 100 x 50 world and on a negative-
coordinate world, against the brute-force oracle.
"""

import random

import pytest

from repro.core.bi import BiIGERN
from repro.core.mono import MonoIGERN
from repro.geometry.rectangle import Rect
from repro.grid.index import GridIndex
from repro.queries.brute import brute_bi_rnn, brute_mono_rnn

EXTENTS = [
    Rect(0.0, 0.0, 100.0, 50.0),
    Rect(-10.0, -10.0, 10.0, 10.0),
    Rect(1000.0, 2000.0, 1001.0, 2002.0),
    # Far from the origin: coordinate magnitude ~1e8 dwarfs the object
    # spacing, so any absolute epsilon (and the textbook bisector form,
    # whose c = |q|^2 - |o|^2 cancellation loses ~8 digits here) breaks.
    Rect(1.0e8, 1.0e8, 1.0e8 + 100.0, 1.0e8 + 50.0),
]


def populate(extent, n, rng, bichromatic=False):
    grid = GridIndex(16, extent=extent)
    for i in range(n):
        pos = (
            rng.uniform(extent.xmin, extent.xmax),
            rng.uniform(extent.ymin, extent.ymax),
        )
        category = ("A" if i % 2 else "B") if bichromatic else 0
        grid.insert(i, pos, category)
    return grid


def drift(grid, extent, rng):
    sx = extent.width * 0.02
    sy = extent.height * 0.02
    for oid in list(grid.objects()):
        p = grid.position(oid)
        grid.move(
            oid,
            (
                min(max(p.x + rng.gauss(0, sx), extent.xmin), extent.xmax),
                min(max(p.y + rng.gauss(0, sy), extent.ymin), extent.ymax),
            ),
        )


class TestMonoOnCustomExtents:
    @pytest.mark.parametrize("extent", EXTENTS)
    def test_continuous_correctness(self, extent):
        rng = random.Random(17)
        grid = populate(extent, 120, rng)
        algo = MonoIGERN(grid, query_id=0)
        state, report = algo.initial(grid.position(0))
        expected = brute_mono_rnn(grid.positions_snapshot(), grid.position(0), query_id=0)
        assert set(report.answer) == expected
        for _ in range(12):
            drift(grid, extent, rng)
            qpos = grid.position(0)
            algo.incremental(state, qpos)
            expected = brute_mono_rnn(grid.positions_snapshot(), qpos, query_id=0)
            assert set(state.answer) == expected


class TestBiOnCustomExtents:
    @pytest.mark.parametrize("extent", EXTENTS)
    def test_continuous_correctness(self, extent):
        rng = random.Random(23)
        grid = populate(extent, 120, rng, bichromatic=True)
        qid = next(iter(sorted(o for o in grid.objects("A"))))
        algo = BiIGERN(grid, query_id=qid)
        state, report = algo.initial(grid.position(qid))
        expected = brute_bi_rnn(
            grid.positions_snapshot("A"),
            grid.positions_snapshot("B"),
            grid.position(qid),
            query_id=qid,
        )
        assert set(report.answer) == expected
        for _ in range(12):
            drift(grid, extent, rng)
            qpos = grid.position(qid)
            algo.incremental(state, qpos)
            expected = brute_bi_rnn(
                grid.positions_snapshot("A"),
                grid.positions_snapshot("B"),
                qpos,
                query_id=qid,
            )
            assert set(state.answer) == expected


class TestFarOffsetBisector:
    def test_midpoint_lies_exactly_on_the_bisector(self):
        """Regression for the textbook bisector form at large offsets.

        With ``c = |q|^2 - |o|^2`` the two ~1e16 squared norms cancel
        catastrophically and the midpoint of adjacent points at x ~ 1e8
        evaluated to -1.0; the midpoint form ``c = -(a*mx + b*my)`` is
        exact here (all operations representable), so the midpoint must
        sit exactly on the line.
        """
        from repro.geometry.bisector import bisector_halfplane
        from repro.geometry import predicates

        q = (1.0e8, 5.0)
        o = (1.0e8 + 1.0, 5.0)
        hp = bisector_halfplane(q, o)
        midpoint = (0.5 * (q[0] + o[0]), 0.5 * (q[1] + o[1]))
        assert hp.value(midpoint) == 0.0
        assert predicates.halfplane_sign(hp, *midpoint) == 0
        # And the closed/strict semantics at the tie are the paper's:
        # the midpoint belongs to the closed q-side half-plane.
        assert hp.contains(midpoint)
        assert not hp.strictly_contains(midpoint)


class TestCRNNOnCustomExtent:
    def test_crnn_on_wide_world(self):
        from repro.queries import BruteForceMonoQuery, CRNNQuery, QueryPosition
        from repro.engine.simulation import Simulator

        extent = Rect(0.0, 0.0, 100.0, 50.0)

        class WideWalk:
            def __init__(self):
                self._rng = random.Random(3)
                self._pos = {
                    i: (self._rng.uniform(0, 100), self._rng.uniform(0, 50))
                    for i in range(150)
                }

            def initial(self):
                return [(oid, p, 0) for oid, p in self._pos.items()]

            def step(self, dt=1.0):
                out = []
                for oid, (x, y) in self._pos.items():
                    nx = min(max(x + self._rng.gauss(0, 1.0), 0.0), 100.0)
                    ny = min(max(y + self._rng.gauss(0, 0.5), 0.0), 50.0)
                    self._pos[oid] = (nx, ny)
                    out.append((oid, (nx, ny)))
                return out

        sim = Simulator(WideWalk(), grid_size=32, extent=extent)
        pos = QueryPosition(sim.grid, query_id=0)
        sim.add_query("crnn", CRNNQuery(sim.grid, pos))
        sim.add_query("brute", BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=0)))
        result = sim.run(8)
        for t in range(9):
            assert result["crnn"].ticks[t].answer == result["brute"].ticks[t].answer
