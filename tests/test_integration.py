"""End-to-end integration tests across the whole stack.

These drive the full pipeline — road network, Brinkhoff-style generator,
grid index, simulator, and all five continuous-query algorithms at once —
and assert total agreement plus the headline behavioral claims of the
paper at test scale.
"""

import pytest

from repro import (
    BruteForceBiQuery,
    BruteForceMonoQuery,
    CRNNQuery,
    IGERNBiQuery,
    IGERNMonoQuery,
    QueryPosition,
    Simulator,
    TPLQuery,
    Trace,
    VoronoiRepeatQuery,
    WorkloadSpec,
    build_generator,
    build_simulator,
    central_object,
)

TICKS = 15


class TestFullMonoPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        spec = WorkloadSpec(
            n_objects=800, grid_size=32, seed=101, network="delaunay"
        )
        sim = build_simulator(spec)
        qid = central_object(sim)

        def pos():
            return QueryPosition(sim.grid, query_id=qid)

        sim.add_query("igern", IGERNMonoQuery(sim.grid, pos()))
        sim.add_query("igern-k2", IGERNMonoQuery(sim.grid, pos(), k=2))
        sim.add_query("crnn", CRNNQuery(sim.grid, pos()))
        sim.add_query("tpl", TPLQuery(sim.grid, pos()))
        sim.add_query("brute", BruteForceMonoQuery(sim.grid, pos()))
        sim.add_query("brute-k2", BruteForceMonoQuery(sim.grid, pos(), k=2))
        return sim.run(TICKS)

    def test_all_k1_algorithms_agree(self, result):
        for t in range(TICKS + 1):
            expected = result["brute"].ticks[t].answer
            assert result["igern"].ticks[t].answer == expected
            assert result["crnn"].ticks[t].answer == expected
            assert result["tpl"].ticks[t].answer == expected

    def test_rknn_agrees_with_its_oracle(self, result):
        for t in range(TICKS + 1):
            assert (
                result["igern-k2"].ticks[t].answer
                == result["brute-k2"].ticks[t].answer
            )

    def test_k2_answers_superset_of_k1(self, result):
        for t in range(TICKS + 1):
            assert result["igern"].ticks[t].answer <= result["igern-k2"].ticks[t].answer

    def test_igern_cheaper_than_crnn_overall(self, result):
        assert result["igern"].total_time < result["crnn"].total_time

    def test_answers_have_at_most_six_rnns(self, result):
        for t in range(TICKS + 1):
            assert len(result["igern"].ticks[t].answer) <= 6


class TestFullBiPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        spec = WorkloadSpec(
            n_objects=800, grid_size=32, seed=202, bichromatic=True, a_fraction=0.3
        )
        sim = build_simulator(spec)
        qid = central_object(sim, "A")

        def pos():
            return QueryPosition(sim.grid, query_id=qid)

        sim.add_query("igern", IGERNBiQuery(sim.grid, pos()))
        sim.add_query("voronoi", VoronoiRepeatQuery(sim.grid, pos()))
        sim.add_query("brute", BruteForceBiQuery(sim.grid, pos()))
        return sim.run(TICKS)

    def test_all_algorithms_agree(self, result):
        for t in range(TICKS + 1):
            expected = result["brute"].ticks[t].answer
            assert result["igern"].ticks[t].answer == expected
            assert result["voronoi"].ticks[t].answer == expected

    def test_bichromatic_answers_can_exceed_six(self, result):
        # With 30% A objects a query often owns many B objects; at least
        # the bound must not be artificially applied.
        sizes = [t.answer_size for t in result["igern"].ticks]
        assert max(sizes) >= 0  # structural: sizes recorded per tick
        assert len(sizes) == TICKS + 1


class TestTraceReproducibility:
    def test_identical_runs_from_same_trace(self):
        gen = build_generator(WorkloadSpec(n_objects=300, seed=77))
        trace = Trace.record(gen, 10)

        def run():
            sim = Simulator(trace.replay(), grid_size=32)
            qid = central_object(sim)
            sim.add_query(
                "igern", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
            )
            res = sim.run(10)
            return [t.answer for t in res["igern"].ticks]

        assert run() == run()

    def test_trace_roundtrip_through_disk(self, tmp_path):
        gen = build_generator(WorkloadSpec(n_objects=100, seed=55, bichromatic=True))
        trace = Trace.record(gen, 5)
        path = tmp_path / "workload.csv"
        trace.save(path)
        loaded = Trace.load(path)

        def answers(t):
            sim = Simulator(t.replay(), grid_size=16)
            qid = central_object(sim, "A")
            sim.add_query(
                "bi", IGERNBiQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
            )
            return [m.answer for m in sim.run(5)["bi"].ticks]

        assert answers(trace) == answers(loaded)


class TestManyQueriesOneGrid:
    def test_ten_simultaneous_queries(self):
        spec = WorkloadSpec(n_objects=500, grid_size=32, seed=88)
        sim = build_simulator(spec)
        ids = sorted(sim.grid.objects())[:10]
        for oid in ids:
            sim.add_query(
                f"q{oid}",
                IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=oid)),
            )
            sim.add_query(
                f"b{oid}",
                BruteForceMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=oid)),
            )
        result = sim.run(8)
        for oid in ids:
            for t in range(9):
                assert (
                    result[f"q{oid}"].ticks[t].answer
                    == result[f"b{oid}"].ticks[t].answer
                )
