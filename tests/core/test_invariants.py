"""Structural invariants of the IGERN monitored state.

Beyond answer correctness (test_theorems.py), these check the properties
the paper's discussion relies on: the answer is always a subset of the
monitored set, the region always contains the query, the guarded pruning
never enlarges the exact region, and the monitored area stays a small
fraction of the space once the query is warm.
"""

import random

from repro.core.bi import BiIGERN
from repro.core.mono import MonoIGERN
from repro.grid.index import GridIndex


def drift(grid, rng, sigma=0.03):
    for oid in list(grid.objects()):
        p = grid.position(oid)
        grid.move(
            oid,
            (
                min(max(p.x + rng.gauss(0, sigma), 0.0), 1.0),
                min(max(p.y + rng.gauss(0, sigma), 0.0), 1.0),
            ),
        )


class TestMonoInvariants:
    def run_tracked(self, seed, ticks=25):
        rng = random.Random(seed)
        grid = GridIndex(16)
        for i in range(150):
            grid.insert(i, (rng.random(), rng.random()))
        algo = MonoIGERN(grid, query_id=0)
        state, report = algo.initial(grid.position(0))
        yield grid, state, report
        for _ in range(ticks):
            drift(grid, rng)
            report = algo.incremental(state, grid.position(0))
            yield grid, state, report

    def test_answer_subset_of_monitored(self):
        for grid, state, report in self.run_tracked(1):
            assert report.answer <= report.monitored

    def test_query_point_always_in_region(self):
        for grid, state, report in self.run_tracked(2):
            assert state.alive.point_alive(state.qpos)

    def test_candidate_snapshots_match_grid(self):
        """After each step the stored candidate positions are current."""
        for grid, state, report in self.run_tracked(3):
            for oid, snapshot in state.candidates.items():
                assert grid.position(oid) == snapshot

    def test_region_halfplanes_match_candidates(self):
        """Every mask half-plane belongs to a live monitored candidate."""
        from repro.geometry.bisector import bisector_halfplane

        for grid, state, report in self.run_tracked(4):
            expected = {
                bisector_halfplane(state.qpos, pos)
                for pos in state.candidates.values()
                if pos != state.qpos
            }
            assert set(state.alive.halfplanes) == expected

    def test_monitored_area_fraction_small_when_warm(self):
        last = None
        for grid, state, report in self.run_tracked(5, ticks=30):
            last = report
        # After 30 ticks on a 16x16 grid, the monitored region should be
        # far below the whole space (the paper: ~1/6th of CRNN's area).
        assert last.alive_fraction < 0.25


class TestBiInvariants:
    def run_tracked(self, seed, ticks=25):
        rng = random.Random(seed)
        grid = GridIndex(16)
        for i in range(150):
            grid.insert(i, (rng.random(), rng.random()), "A" if i % 3 == 0 else "B")
        algo = BiIGERN(grid, query_id=0)
        state, report = algo.initial(grid.position(0))
        yield grid, state, report
        for _ in range(ticks):
            drift(grid, rng)
            report = algo.incremental(state, grid.position(0))
            yield grid, state, report

    def test_monitored_objects_are_type_a(self):
        for grid, state, report in self.run_tracked(6):
            for oid in report.monitored:
                assert grid.category(oid) == "A"

    def test_answers_are_type_b(self):
        for grid, state, report in self.run_tracked(7):
            for oid in report.answer:
                assert grid.category(oid) == "B"

    def test_answers_inside_exact_region(self):
        """Every reported B object survives all monitored bisectors."""
        for grid, state, report in self.run_tracked(8):
            for oid in report.answer:
                assert state.alive.point_alive(grid.position(oid))

    def test_snapshots_current(self):
        for grid, state, report in self.run_tracked(9):
            for oid, snapshot in state.nn_a.items():
                assert grid.position(oid) == snapshot
