"""Tests for the shared verification cache."""

import random

import pytest

from repro.core.mono import MonoIGERN
from repro.core.shared import SharedVerificationCache
from repro.geometry.point import dist_sq
from repro.grid.index import GridIndex
from repro.queries.brute import brute_mono_rnn


def brute_has_witness(grid, oid, dq2, query_id):
    pos = grid.position(oid)
    for other in grid.objects():
        if other == oid or other == query_id:
            continue
        if dist_sq(grid.position(other), pos) < dq2:
            return True
    return False


class TestPredicate:
    def test_matches_brute_force_across_queries(self):
        rng = random.Random(3)
        grid = GridIndex(8)
        for i in range(60):
            grid.insert(i, (rng.random(), rng.random()))
        cache = SharedVerificationCache(grid)
        for _ in range(400):
            oid = rng.randrange(60)
            qid = rng.randrange(60)
            if qid == oid:
                qid = None
            dq2 = rng.random() * 0.25
            assert cache.has_witness(oid, dq2, qid) == brute_has_witness(
                grid, oid, dq2, qid
            )

    def test_yes_record_not_reused_for_its_own_query(self):
        grid = GridIndex(8)
        grid.insert("o", (0.5, 0.5))
        grid.insert("w", (0.52, 0.5))  # the only nearby object
        grid.insert("far", (0.95, 0.95))
        cache = SharedVerificationCache(grid)
        # Query A finds 'w' as witness.
        assert cache.has_witness("o", 0.01, "far")
        # For a query issued BY 'w', that witness must not count.
        assert not cache.has_witness("o", 0.01, "w")

    def test_no_record_completed_with_excluded_object(self):
        grid = GridIndex(8)
        grid.insert("o", (0.5, 0.5))
        grid.insert("q1", (0.52, 0.5))  # near, excluded by the first probe
        grid.insert("far", (0.95, 0.95))
        cache = SharedVerificationCache(grid)
        # Probe for q1 excludes q1: no witness below 0.01.
        assert not cache.has_witness("o", 0.01, "q1")
        # For another query, q1 itself is a witness — the cache must
        # complete the NO record with q1's actual distance.
        assert cache.has_witness("o", 0.01, "far")

    def test_invalidation_on_movement(self):
        grid = GridIndex(8)
        grid.insert("o", (0.5, 0.5))
        grid.insert("w", (0.9, 0.9))
        cache = SharedVerificationCache(grid)
        assert not cache.has_witness("o", 0.01, None)
        grid.move("w", (0.52, 0.5))  # walks right next to 'o'
        assert cache.has_witness("o", 0.01, None)

    def test_hits_accumulate(self):
        rng = random.Random(5)
        grid = GridIndex(8)
        for i in range(40):
            grid.insert(i, (rng.random(), rng.random()))
        cache = SharedVerificationCache(grid)
        for _ in range(3):
            cache.has_witness(0, 0.5, None)  # same question three times
        assert cache.hits >= 2
        assert cache.hit_rate > 0.5


class TestIntegrationWithQueries:
    def test_many_queries_share_and_stay_exact(self):
        rng = random.Random(8)
        grid = GridIndex(12)
        for i in range(120):
            grid.insert(i, (rng.random(), rng.random()))
        cache = SharedVerificationCache(grid)
        algos = {
            qid: MonoIGERN(grid, query_id=qid, shared_cache=cache)
            for qid in range(6)
        }
        states = {qid: algo.initial(grid.position(qid))[0] for qid, algo in algos.items()}
        for _ in range(10):
            for oid in range(120):
                p = grid.position(oid)
                grid.move(
                    oid,
                    (
                        min(max(p.x + rng.gauss(0, 0.03), 0.0), 1.0),
                        min(max(p.y + rng.gauss(0, 0.03), 0.0), 1.0),
                    ),
                )
            for qid, algo in algos.items():
                algo.incremental(states[qid], grid.position(qid))
                expected = brute_mono_rnn(
                    grid.positions_snapshot(), grid.position(qid), query_id=qid
                )
                assert set(states[qid].answer) == expected

    def test_k_greater_one_ignores_cache(self):
        grid = GridIndex(8)
        grid.insert(0, (0.2, 0.2))
        grid.insert(1, (0.8, 0.8))
        cache = SharedVerificationCache(grid)
        algo = MonoIGERN(grid, k=2, shared_cache=cache)
        algo.initial((0.5, 0.5))
        assert cache.hits + cache.misses == 0
