"""Unit tests for monochromatic IGERN (Algorithms 1 and 2)."""

import random

import pytest

from repro.core.mono import MonoIGERN
from repro.geometry.point import Point
from repro.grid.index import GridIndex
from repro.queries.brute import brute_mono_rnn

from tests.conftest import populate


def check_against_brute(grid, algo, state, qpos, query_id=None, k=1):
    expected = brute_mono_rnn(
        grid.positions_snapshot(), qpos, query_id=query_id, k=k
    )
    assert set(state.answer) == expected


class TestInitialStep:
    def test_empty_grid(self):
        grid = GridIndex(8)
        algo = MonoIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset()
        assert report.is_initial

    def test_single_object_is_rnn(self):
        grid = GridIndex(8)
        grid.insert(1, (0.2, 0.2))
        algo = MonoIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset({1})

    def test_paper_style_example(self):
        """A hand-built configuration with a known answer."""
        grid = GridIndex(16)
        # o1 is nearest to q and has no one nearer: an RNN.
        # o2 and o3 are mutually nearest: neither is an RNN of q.
        populate(grid, [(0.55, 0.5), (0.9, 0.9), (0.92, 0.9)], start_id=1)
        algo = MonoIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset({1})
        check_against_brute(grid, algo, state, (0.5, 0.5))

    def test_query_object_excluded(self, small_grid):
        qid = 0
        qpos = small_grid.position(qid)
        algo = MonoIGERN(small_grid, query_id=qid)
        state, report = algo.initial(qpos)
        assert qid not in report.answer
        assert qid not in state.candidates
        check_against_brute(small_grid, algo, state, qpos, query_id=qid)

    def test_matches_brute_force_many_queries(self, small_grid):
        for qid in range(0, 40, 3):
            qpos = small_grid.position(qid)
            algo = MonoIGERN(small_grid, query_id=qid)
            state, _ = algo.initial(qpos)
            check_against_brute(small_grid, algo, state, qpos, query_id=qid)

    def test_candidates_cover_answer(self, small_grid):
        algo = MonoIGERN(small_grid)
        state, report = algo.initial((0.4, 0.6))
        assert report.answer <= frozenset(state.candidates)

    def test_region_contains_no_free_objects(self, small_grid):
        """After Phase I, every alive-cell object is a candidate."""
        algo = MonoIGERN(small_grid)
        state, _ = algo.initial((0.4, 0.6))
        for oid in small_grid.objects():
            key = small_grid.cell_of(oid)
            if state.alive.is_alive(key) and oid not in state.candidates:
                # Objects in straddling cells outside the exact region are
                # tolerated — they must be point-dead.
                assert not state.alive.point_alive(small_grid.position(oid))

    def test_object_coincident_with_query(self):
        grid = GridIndex(8)
        grid.insert(1, (0.5, 0.5))
        grid.insert(2, (0.9, 0.9))
        algo = MonoIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        # Object 1 has the query at distance 0: nothing can beat that.
        assert 1 in report.answer

    def test_invalid_k(self, small_grid):
        with pytest.raises(ValueError):
            MonoIGERN(small_grid, k=0)


class TestIncrementalStep:
    def test_no_movement_keeps_answer(self, small_grid):
        algo = MonoIGERN(small_grid, query_id=0)
        qpos = small_grid.position(0)
        state, first = algo.initial(qpos)
        report = algo.incremental(state, qpos)
        assert report.answer == first.answer
        assert not report.movement_rebuild

    def test_query_moves(self, small_grid):
        algo = MonoIGERN(small_grid, query_id=0)
        state, _ = algo.initial(small_grid.position(0))
        new_q = Point(0.9, 0.1)
        small_grid.move(0, new_q)
        report = algo.incremental(state, new_q)
        assert report.movement_rebuild
        check_against_brute(small_grid, algo, state, new_q, query_id=0)

    def test_candidate_moves(self, small_grid):
        algo = MonoIGERN(small_grid, query_id=0)
        qpos = small_grid.position(0)
        state, _ = algo.initial(qpos)
        victim = next(iter(state.candidates))
        small_grid.move(victim, (0.95, 0.95))
        report = algo.incremental(state, qpos)
        assert report.movement_rebuild
        check_against_brute(small_grid, algo, state, qpos, query_id=0)

    def test_new_object_enters_region(self, small_grid):
        algo = MonoIGERN(small_grid, query_id=0)
        qpos = small_grid.position(0)
        state, _ = algo.initial(qpos)
        # Drop a brand-new object right next to the query.
        small_grid.insert(999, (qpos.x + 1e-4, qpos.y))
        report = algo.incremental(state, qpos)
        assert 999 in state.candidates
        assert 999 in report.answer
        check_against_brute(small_grid, algo, state, qpos, query_id=0)

    def test_candidate_deleted_from_grid(self, small_grid):
        algo = MonoIGERN(small_grid, query_id=0)
        qpos = small_grid.position(0)
        state, _ = algo.initial(qpos)
        victim = next(iter(state.candidates))
        small_grid.remove(victim)
        report = algo.incremental(state, qpos)
        assert victim not in state.candidates
        assert victim not in report.answer
        check_against_brute(small_grid, algo, state, qpos, query_id=0)

    def test_long_random_walk_stays_correct(self, rng):
        grid = GridIndex(12)
        for i in range(80):
            grid.insert(i, (rng.random(), rng.random()))
        algo = MonoIGERN(grid, query_id=0)
        state, _ = algo.initial(grid.position(0))
        for _ in range(40):
            # Move ~15 random objects per tick (including maybe the query).
            for _ in range(15):
                oid = rng.randrange(80)
                p = grid.position(oid)
                grid.move(
                    oid,
                    (
                        min(max(p.x + rng.gauss(0, 0.05), 0.0), 1.0),
                        min(max(p.y + rng.gauss(0, 0.05), 0.0), 1.0),
                    ),
                )
            qpos = grid.position(0)
            algo.incremental(state, qpos)
            check_against_brute(grid, algo, state, qpos, query_id=0)

    def test_prune_modes_all_correct(self, rng):
        for mode in ("guarded", "literal", "off"):
            grid = GridIndex(12)
            r = random.Random(99)
            for i in range(60):
                grid.insert(i, (r.random(), r.random()))
            algo = MonoIGERN(grid, query_id=0, prune=mode)
            state, _ = algo.initial(grid.position(0))
            for _ in range(15):
                for oid in range(60):
                    p = grid.position(oid)
                    grid.move(
                        oid,
                        (
                            min(max(p.x + r.gauss(0, 0.02), 0.0), 1.0),
                            min(max(p.y + r.gauss(0, 0.02), 0.0), 1.0),
                        ),
                    )
                qpos = grid.position(0)
                algo.incremental(state, qpos)
                check_against_brute(grid, algo, state, qpos, query_id=0)
