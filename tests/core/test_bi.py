"""Unit tests for bichromatic IGERN (Algorithms 3 and 4)."""

import random

import pytest

from repro.core.bi import BiIGERN
from repro.geometry.point import Point
from repro.grid.index import GridIndex
from repro.queries.brute import brute_bi_rnn

from tests.conftest import populate


def check_against_brute(grid, state, qpos, query_id=None):
    expected = brute_bi_rnn(
        grid.positions_snapshot("A"),
        grid.positions_snapshot("B"),
        qpos,
        query_id=query_id,
    )
    assert set(state.answer) == expected


class TestConstruction:
    def test_same_categories_raise(self):
        with pytest.raises(ValueError):
            BiIGERN(GridIndex(8), cat_a="A", cat_b="A")


class TestInitialStep:
    def test_no_b_objects(self):
        grid = GridIndex(8)
        grid.insert(1, (0.3, 0.3), "A")
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset()

    def test_all_b_objects_can_be_answers(self):
        """Unlike mono, the bichromatic answer is unbounded: with no
        competing A objects every B object is an RNN."""
        grid = GridIndex(8)
        ids = populate(
            grid, [(0.1, 0.1), (0.9, 0.9), (0.1, 0.9), (0.9, 0.1)], category="B"
        )
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset(ids)

    def test_competing_a_object_splits_soldiers(self):
        grid = GridIndex(16)
        grid.insert("rival", (0.9, 0.5), "A")
        grid.insert("near-b", (0.55, 0.5), "B")
        grid.insert("far-b", (0.85, 0.5), "B")
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset({"near-b"})
        assert "rival" in state.nn_a

    def test_matches_brute_force_many_queries(self, bi_grid):
        a_ids = sorted(bi_grid.objects("A"))
        for qid in a_ids[:15]:
            qpos = bi_grid.position(qid)
            algo = BiIGERN(bi_grid, query_id=qid)
            state, _ = algo.initial(qpos)
            check_against_brute(bi_grid, state, qpos, query_id=qid)

    def test_monitored_set_contains_only_a(self, bi_grid):
        algo = BiIGERN(bi_grid)
        state, _ = algo.initial((0.5, 0.5))
        for oid in state.nn_a:
            assert bi_grid.category(oid) == "A"

    def test_b_object_coincident_with_query(self):
        grid = GridIndex(8)
        grid.insert("b", (0.5, 0.5), "B")
        grid.insert("a", (0.6, 0.5), "A")
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert "b" in report.answer  # distance 0 cannot be beaten strictly


class TestIncrementalStep:
    def test_no_movement_keeps_answer(self, bi_grid):
        qid = next(iter(sorted(bi_grid.objects("A"))))
        qpos = bi_grid.position(qid)
        algo = BiIGERN(bi_grid, query_id=qid)
        state, first = algo.initial(qpos)
        report = algo.incremental(state, qpos)
        assert report.answer == first.answer

    def test_query_movement(self, bi_grid):
        qid = next(iter(sorted(bi_grid.objects("A"))))
        algo = BiIGERN(bi_grid, query_id=qid)
        state, _ = algo.initial(bi_grid.position(qid))
        new_q = Point(0.15, 0.85)
        bi_grid.move(qid, new_q)
        report = algo.incremental(state, new_q)
        assert report.movement_rebuild
        check_against_brute(bi_grid, state, new_q, query_id=qid)

    def test_b_object_walks_into_answer(self):
        grid = GridIndex(16)
        grid.insert("rival", (0.9, 0.5), "A")
        grid.insert("b", (0.88, 0.5), "B")  # initially closer to rival
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset()
        grid.move("b", (0.55, 0.5))  # now closer to the query
        report = algo.incremental(state, (0.5, 0.5))
        assert report.answer == frozenset({"b"})

    def test_rival_steals_soldier(self):
        grid = GridIndex(16)
        grid.insert("rival", (0.95, 0.5), "A")
        grid.insert("b", (0.6, 0.5), "B")
        algo = BiIGERN(grid)
        state, report = algo.initial((0.5, 0.5))
        assert report.answer == frozenset({"b"})
        grid.move("rival", (0.62, 0.5))  # rival now nearest to b
        report = algo.incremental(state, (0.5, 0.5))
        assert report.answer == frozenset()

    def test_monitored_a_deleted(self, bi_grid):
        qid = next(iter(sorted(bi_grid.objects("A"))))
        qpos = bi_grid.position(qid)
        algo = BiIGERN(bi_grid, query_id=qid)
        state, _ = algo.initial(qpos)
        victim = next(iter(state.nn_a))
        bi_grid.remove(victim)
        report = algo.incremental(state, qpos)
        assert victim not in state.nn_a
        check_against_brute(bi_grid, state, qpos, query_id=qid)

    def test_long_random_walk_stays_correct(self):
        rng = random.Random(31)
        grid = GridIndex(12)
        for i in range(90):
            cat = "A" if i % 3 == 0 else "B"
            grid.insert(i, (rng.random(), rng.random()), cat)
        qid = 0
        algo = BiIGERN(grid, query_id=qid)
        state, _ = algo.initial(grid.position(qid))
        for _ in range(40):
            for _ in range(20):
                oid = rng.randrange(90)
                p = grid.position(oid)
                grid.move(
                    oid,
                    (
                        min(max(p.x + rng.gauss(0, 0.05), 0.0), 1.0),
                        min(max(p.y + rng.gauss(0, 0.05), 0.0), 1.0),
                    ),
                )
            qpos = grid.position(qid)
            algo.incremental(state, qpos)
            check_against_brute(grid, state, qpos, query_id=qid)

    def test_prune_modes_all_correct(self):
        for mode in ("guarded", "literal", "off"):
            rng = random.Random(77)
            grid = GridIndex(12)
            for i in range(70):
                cat = "A" if i % 2 == 0 else "B"
                grid.insert(i, (rng.random(), rng.random()), cat)
            algo = BiIGERN(grid, query_id=0, prune=mode)
            state, _ = algo.initial(grid.position(0))
            for _ in range(12):
                for oid in range(70):
                    p = grid.position(oid)
                    grid.move(
                        oid,
                        (
                            min(max(p.x + rng.gauss(0, 0.02), 0.0), 1.0),
                            min(max(p.y + rng.gauss(0, 0.02), 0.0), 1.0),
                        ),
                    )
                qpos = grid.position(0)
                algo.incremental(state, qpos)
                check_against_brute(grid, state, qpos, query_id=0)


class TestBisectorTieRegression:
    def test_exact_tie_b_object_is_an_answer(self):
        """Regression: a B object exactly equidistant from the query and
        its only A competitor is a reverse nearest neighbor (no A object
        is *strictly* closer).  The rounded q/A bisector once evaluated
        the point a hair inside the dead side and the point-level
        prefilter dropped it before verification could decide the tie."""
        grid = GridIndex(8)
        grid.insert("a1", (0.871094, 0.871094), "A")
        grid.insert("b1", (1.0, 0.871094), "B")
        algo = BiIGERN(grid)
        state, report = algo.initial((1.0, 1.0))
        check_against_brute(grid, state, (1.0, 1.0))
        assert "b1" in state.answer
