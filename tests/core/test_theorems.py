"""Property-based tests encoding the paper's Theorems 1-4.

Theorem 1/3 (*accuracy*): every object IGERN returns is an exact reverse
nearest neighbor.  Theorem 2/4 (*completeness*): IGERN returns all reverse
nearest neighbors.  Together: the answer equals the brute-force answer, on
any input, including after arbitrary movement — which is exactly what
hypothesis explores here.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bi import BiIGERN
from repro.core.mono import MonoIGERN
from repro.grid.index import GridIndex
from repro.queries.brute import brute_bi_rnn, brute_mono_rnn

# Coordinates are quantized to a 1e-6 lattice.  The brute-force oracle
# computes squared distances with catastrophic cancellation on adversarial
# floats (e.g. 1.0 - 1e-170 rounds to 1.0), where IGERN's linear bisector
# form is actually *more* accurate — the oracle, not the algorithm, is
# wrong there.  On the lattice, distinct distances differ by >= ~1e-12 in
# squared space, far above double rounding error, and exact ties are
# handled identically by both sides.
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
point = st.tuples(unit, unit)
point_lists = st.lists(point, min_size=1, max_size=40)
grid_sizes = st.sampled_from([2, 5, 16])
moves = st.lists(
    st.tuples(st.integers(min_value=0, max_value=39), point),
    min_size=0,
    max_size=25,
)


class TestMonoTheorems:
    @given(grid_sizes, point_lists, point)
    @settings(max_examples=120)
    def test_initial_accurate_and_complete(self, n, pts, q):
        grid = GridIndex(n)
        for i, p in enumerate(pts):
            grid.insert(i, p)
        algo = MonoIGERN(grid)
        state, report = algo.initial(q)
        expected = brute_mono_rnn(grid.positions_snapshot(), q)
        assert set(report.answer) == expected

    @given(grid_sizes, point_lists, point, st.lists(moves, min_size=1, max_size=4), point)
    @settings(max_examples=60)
    def test_incremental_accurate_and_complete(self, n, pts, q0, tick_moves, q_final):
        grid = GridIndex(n)
        for i, p in enumerate(pts):
            grid.insert(i, p)
        algo = MonoIGERN(grid)
        state, _ = algo.initial(q0)
        queries = [q0] * (len(tick_moves) - 1) + [q_final]
        for updates, q in zip(tick_moves, queries):
            for oid, pos in updates:
                if oid in grid:
                    grid.move(oid, pos)
            algo.incremental(state, q)
            expected = brute_mono_rnn(grid.positions_snapshot(), q)
            assert set(state.answer) == expected

    @given(grid_sizes, point_lists, point, st.integers(min_value=1, max_value=4))
    @settings(max_examples=80)
    def test_rknn_generalization(self, n, pts, q, k):
        grid = GridIndex(n)
        for i, p in enumerate(pts):
            grid.insert(i, p)
        algo = MonoIGERN(grid, k=k)
        state, report = algo.initial(q)
        expected = brute_mono_rnn(grid.positions_snapshot(), q, k=k)
        assert set(report.answer) == expected


class TestBiTheorems:
    @given(grid_sizes, point_lists, point_lists, point)
    @settings(max_examples=100)
    def test_initial_accurate_and_complete(self, n, a_pts, b_pts, q):
        grid = GridIndex(n)
        for i, p in enumerate(a_pts):
            grid.insert(("A", i), p, "A")
        for i, p in enumerate(b_pts):
            grid.insert(("B", i), p, "B")
        algo = BiIGERN(grid)
        state, report = algo.initial(q)
        expected = brute_bi_rnn(
            grid.positions_snapshot("A"), grid.positions_snapshot("B"), q
        )
        assert set(report.answer) == expected

    @given(grid_sizes, point_lists, point_lists, point, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_bi_rknn_generalization(self, n, a_pts, b_pts, q, k):
        grid = GridIndex(n)
        for i, p in enumerate(a_pts):
            grid.insert(("A", i), p, "A")
        for i, p in enumerate(b_pts):
            grid.insert(("B", i), p, "B")
        algo = BiIGERN(grid, k=k)
        state, report = algo.initial(q)
        expected = brute_bi_rnn(
            grid.positions_snapshot("A"), grid.positions_snapshot("B"), q, k=k
        )
        assert set(report.answer) == expected

    @given(
        grid_sizes,
        point_lists,
        point_lists,
        point,
        st.lists(moves, min_size=1, max_size=3),
        point,
    )
    @settings(max_examples=40)
    def test_incremental_accurate_and_complete(
        self, n, a_pts, b_pts, q0, tick_moves, q_final
    ):
        grid = GridIndex(n)
        for i, p in enumerate(a_pts):
            grid.insert(("A", i), p, "A")
        for i, p in enumerate(b_pts):
            grid.insert(("B", i), p, "B")
        all_ids = list(grid.objects())
        algo = BiIGERN(grid)
        state, _ = algo.initial(q0)
        queries = [q0] * (len(tick_moves) - 1) + [q_final]
        for updates, q in zip(tick_moves, queries):
            for idx, pos in updates:
                grid.move(all_ids[idx % len(all_ids)], pos)
            algo.incremental(state, q)
            expected = brute_bi_rnn(
                grid.positions_snapshot("A"), grid.positions_snapshot("B"), q
            )
            assert set(state.answer) == expected


class TestSixRNNProperty:
    """The classic theoretical bound: at most six monochromatic RNNs
    (for points in general position; degenerate co-located inputs can
    exceed it, so those are filtered)."""

    @given(point_lists, point)
    @settings(max_examples=100)
    def test_at_most_six_answers_general_position(self, pts, q):
        unique = sorted(set(pts))
        if len(unique) != len(pts):
            return  # duplicates break general position
        # Require pairwise distinct distances to avoid ties.
        dists = sorted(math.dist(p, q) for p in unique)
        if any(abs(a - b) < 1e-12 for a, b in zip(dists, dists[1:])):
            return
        grid = GridIndex(8)
        for i, p in enumerate(unique):
            grid.insert(i, p)
        algo = MonoIGERN(grid)
        _, report = algo.initial(q)
        assert len(report.answer) <= 6
