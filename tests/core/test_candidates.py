"""Unit tests for the candidate-pruning rules."""

import pytest

from repro.core.candidates import (
    PRUNE_MODES,
    dominated_candidates,
    normalize_prune_mode,
    prune_candidates,
    prune_monitored,
)
from repro.geometry.bisector import bisector_halfplane
from repro.geometry.point import Point
from repro.grid.alive import AliveCellGrid


Q = Point(0.5, 0.5)


class TestDominated:
    def test_no_candidates(self):
        assert dominated_candidates({}, Q) == set()

    def test_isolated_candidates_survive(self):
        cands = {1: Point(0.6, 0.5), 2: Point(0.5, 0.6)}
        assert dominated_candidates(cands, Q) == set()

    def test_clustered_candidate_dominated(self):
        # 2 sits right next to 1 but twice as far from q as from 1.
        cands = {1: Point(0.7, 0.5), 2: Point(0.72, 0.5)}
        doomed = dominated_candidates(cands, Q)
        assert doomed == {1, 2} or doomed == {2} or doomed == {1}
        # Both are within 0.02 of each other and ~0.2 from q, so both are
        # dominated under the paper's rule.
        assert doomed == {1, 2}

    def test_k_requires_more_witnesses(self):
        cands = {1: Point(0.7, 0.5), 2: Point(0.72, 0.5)}
        assert dominated_candidates(cands, Q, k=2) == set()
        cands[3] = Point(0.71, 0.51)
        assert dominated_candidates(cands, Q, k=2) == {1, 2, 3}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            dominated_candidates({}, Q, k=0)

    def test_prune_candidates_in_place(self):
        cands = {1: Point(0.7, 0.5), 2: Point(0.72, 0.5), 3: Point(0.5, 0.9)}
        removed = prune_candidates(cands, Q)
        assert removed == 2
        assert set(cands) == {3}


class TestNormalizePruneMode:
    def test_strings_pass_through(self):
        for mode in PRUNE_MODES:
            assert normalize_prune_mode(mode) == mode

    def test_bool_aliases(self):
        assert normalize_prune_mode(True) == "guarded"
        assert normalize_prune_mode(False) == "off"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            normalize_prune_mode("sometimes")


class TestPruneMonitored:
    def _region(self, candidates):
        alive = AliveCellGrid(32)
        for pos in candidates.values():
            if pos != Q:
                alive.add_halfplane(bisector_halfplane(Q, pos))
        return alive

    def test_active_candidate_kept_even_if_dominated(self):
        # 1 defines the region's east boundary; 2 dominates it from the
        # side, but removing 1 would open the region east.
        cands = {1: Point(0.7, 0.5), 2: Point(0.68, 0.55)}
        alive = self._region(cands)
        before = set(alive.alive_cells())
        prune_monitored(cands, Q, alive)
        after = set(alive.alive_cells())
        # Whatever was pruned, the region never grew.
        assert after <= before

    def test_redundant_far_candidate_pruned(self):
        # far sits behind near in the same direction and in a dead cell.
        cands = {
            "near": Point(0.6, 0.5),
            "far": Point(0.95, 0.5),
            "up": Point(0.5, 0.6),
            "down": Point(0.5, 0.4),
            "left": Point(0.4, 0.5),
        }
        alive = self._region(cands)
        removed = prune_monitored(cands, Q, alive)
        assert removed == 1
        assert "far" not in cands

    def test_straddling_candidate_kept(self):
        """Hysteresis: a dominated candidate in an alive cell stays."""
        # Coarse grid: the candidates' cells straddle the region boundary.
        cands = {
            "near": Point(0.6, 0.5),
            "far": Point(0.63, 0.5),
        }
        alive = AliveCellGrid(4)  # one cell is 0.25 wide — both straddle
        for pos in cands.values():
            alive.add_halfplane(bisector_halfplane(Q, pos))
        prune_monitored(cands, Q, alive)
        assert "far" in cands  # its cell is alive, so it is kept

    def test_coincident_candidate_never_pruned(self):
        cands = {"self": Q, "other": Point(0.6, 0.5)}
        alive = self._region(cands)
        prune_monitored(cands, Q, alive)
        assert "self" in cands

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            prune_monitored({}, Q, AliveCellGrid(8), k=0)

    def test_removal_updates_mask_incrementally(self):
        cands = {
            "near": Point(0.6, 0.5),
            "far": Point(0.95, 0.5),
            "up": Point(0.5, 0.6),
            "down": Point(0.5, 0.4),
            "left": Point(0.4, 0.5),
        }
        alive = self._region(cands)
        prune_monitored(cands, Q, alive)
        # The mask's plane list matches the surviving candidates.
        assert len(alive.halfplanes) == len(cands)
