"""Answer-change streams with the continuous query manager.

Downstream systems rarely want a full answer dump every tick — they want
to hear *what changed*.  This example registers monitoring queries
through :class:`repro.engine.ContinuousQueryManager` and prints the
delta stream (who entered / left each answer), pausing and resuming a
query along the way to show that IGERN resumes exactly from stale state.

Run with::

    python examples/answer_stream.py
"""

from repro import (
    ContinuousQueryManager,
    IGERNMonoQuery,
    QueryPosition,
    WorkloadSpec,
    build_simulator,
    central_object,
)


def main() -> None:
    sim = build_simulator(WorkloadSpec(n_objects=1500, grid_size=48, seed=27))
    manager = ContinuousQueryManager(sim)

    qid = central_object(sim)
    manager.register(
        "hero", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    )
    manager.subscribe(
        lambda c: print(
            f"  [t={c.tick:2d}] {c.query}: +{sorted(c.added)} -{sorted(c.removed)}"
            f" -> {sorted(c.answer)}"
        )
    )

    print(f"streaming answer changes for object {qid}")
    manager.run(6)

    print("pausing the query for 5 ticks (the world keeps moving)...")
    manager.pause("hero")
    manager.run(5)

    print("resuming (incremental recovery from stale state):")
    manager.resume("hero")
    manager.run(4)

    print(f"final answer: {sorted(manager.current_answer('hero'))}")


if __name__ == "__main__":
    main()
