"""Battlefield medical-unit scenario (the paper's bichromatic motivation).

A medical unit (type A) in the field wants to continuously know the
wounded soldiers (type B) for whom *it* is the nearest medical unit —
those are the soldiers it is responsible for right now.  As units and
soldiers move, the assignment changes; a bichromatic IGERN query per
medical unit maintains it incrementally.

Run with::

    python examples/battlefield_medics.py
"""

from repro import (
    IGERNBiQuery,
    QueryPosition,
    WorkloadSpec,
    build_simulator,
)

N_OBJECTS = 2000  # ~8% medical units (A), the rest soldiers (B)
TICKS = 10


def main() -> None:
    sim = build_simulator(
        WorkloadSpec(
            n_objects=N_OBJECTS,
            grid_size=64,
            seed=17,
            network="delaunay",
            bichromatic=True,
            a_fraction=0.08,
        )
    )
    medics = sorted(sim.grid.objects("A"))
    soldiers = sim.grid.count("B")
    print(f"{len(medics)} medical units, {soldiers} soldiers in the field")

    # Register one bichromatic query for each of three medical units.
    tracked = medics[:3]
    for mid in tracked:
        query = IGERNBiQuery(sim.grid, QueryPosition(sim.grid, query_id=mid))
        sim.add_query(f"medic-{mid}", query)

    result = sim.run(n_ticks=TICKS)

    for mid in tracked:
        log = result[f"medic-{mid}"]
        sizes = [t.answer_size for t in log.ticks]
        final = sorted(log.ticks[-1].answer)
        preview = final[:8]
        suffix = " ..." if len(final) > 8 else ""
        print(
            f"medic {mid}: responsible for {sizes[-1]} soldiers "
            f"(per tick: {sizes}); current: {preview}{suffix}"
        )
        print(
            f"  avg incremental step {log.avg_incremental_time * 1e6:.0f} us, "
            f"monitoring {log.avg_monitored:.1f} rival units on average"
        )


if __name__ == "__main__":
    main()
