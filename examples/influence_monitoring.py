"""Influence-set monitoring (the paper's data-mining motivation).

Korn and Muthukrishnan's *influence set* of a point q is the set of
objects that consider q their nearest neighbor — exactly q's reverse
nearest neighbors.  The paper cites this as a core RNN application: "the
RNNs of a query point q are those objects on which q has significant
influence".

This example monitors the influence set of a (static) facility over a
moving population, demonstrates the RkNN extension (objects for which the
facility ranks among their k nearest), and replays the workload from a
recorded trace so the run is exactly reproducible.

Run with::

    python examples/influence_monitoring.py
"""

from repro import (
    GridIndex,
    IGERNMonoQuery,
    QueryPosition,
    Simulator,
    Trace,
    WorkloadSpec,
    build_generator,
)

N_OBJECTS = 1200
TICKS = 15
FACILITY = (0.5, 0.5)


def main() -> None:
    # Record the workload once; both runs below replay the same trace.
    generator = build_generator(WorkloadSpec(n_objects=N_OBJECTS, seed=23))
    trace = Trace.record(generator, TICKS)
    print(f"recorded trace: {trace.n_objects} objects x {len(trace)} ticks")

    for k in (1, 2, 4):
        sim = Simulator(trace.replay(), grid_size=64)
        query = IGERNMonoQuery(
            sim.grid, QueryPosition(sim.grid, fixed=FACILITY), k=k
        )
        sim.add_query("influence", query)
        result = sim.run(n_ticks=TICKS)
        log = result["influence"]
        sizes = [t.answer_size for t in log.ticks]
        print(
            f"k={k}: influence set size per tick {sizes} "
            f"(avg {sum(sizes) / len(sizes):.1f}, "
            f"avg step {log.avg_incremental_time * 1e6:.0f} us)"
        )

    print(
        "\nwith larger k the facility influences more objects (an object"
        "\ncounts once the facility ranks among its k nearest neighbors)"
    )


if __name__ == "__main__":
    main()
