"""Quickstart: continuous reverse nearest neighbor monitoring in ~30 lines.

Builds a synthetic road-network workload, registers one monochromatic
IGERN query issued by a moving object, runs 20 time units, and prints the
answer whenever it changes.

Run with::

    python examples/quickstart.py
"""

from repro import (
    IGERNMonoQuery,
    QueryPosition,
    WorkloadSpec,
    build_simulator,
    central_object,
)


def main() -> None:
    # 2,000 objects moving on a synthetic street grid, indexed by a
    # 64 x 64 grid over the unit square.
    sim = build_simulator(WorkloadSpec(n_objects=2000, grid_size=64, seed=42))

    # The query is itself a moving object — pick the one nearest to the
    # map center and monitor its reverse nearest neighbors.
    query_id = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=query_id))
    sim.add_query("rnn", query)

    print(f"monitoring reverse nearest neighbors of object {query_id}")
    previous = None
    result = sim.run(n_ticks=20)
    for tick in result["rnn"].ticks:
        answer = sorted(tick.answer)
        if answer != previous:
            print(
                f"  t={tick.tick:2d}: RNNs = {answer} "
                f"(monitoring {tick.monitored} objects, "
                f"{tick.region_cells} alive cells)"
            )
            previous = answer

    log = result["rnn"]
    print(
        f"done: {len(log.ticks)} executions, "
        f"avg {log.avg_incremental_time * 1e6:.0f} us per incremental step, "
        f"avg {log.avg_monitored:.1f} monitored objects"
    )


if __name__ == "__main__":
    main()
