"""Mixed-reality game scenario (the paper's monochromatic motivation).

In location-based shooter games like *Botfighters*, a player may only
shoot the players nearest to her — so every player wants to continuously
know *whose* nearest player she is: her reverse nearest neighbors are the
players who can currently shoot her.

This example runs several simultaneous monochromatic IGERN queries (one
per tracked player) over a shared city workload and prints, per tick, who
is "in danger" from whom.  It also demonstrates that many queries share
one grid index and one update stream.

Run with::

    python examples/botfighters_game.py
"""

from repro import (
    IGERNMonoQuery,
    QueryPosition,
    WorkloadSpec,
    build_simulator,
)

N_PLAYERS = 1500
N_TRACKED = 5
TICKS = 12


def main() -> None:
    sim = build_simulator(
        WorkloadSpec(n_objects=N_PLAYERS, grid_size=64, seed=9, network="grid_city")
    )

    # Track the five players with the smallest ids ("our" players).
    tracked = sorted(sim.grid.objects())[:N_TRACKED]
    for pid in tracked:
        query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=pid))
        sim.add_query(f"player-{pid}", query)

    print(f"{N_PLAYERS} players on the street grid; tracking {tracked}")
    result = sim.run(n_ticks=TICKS)

    for t in range(TICKS + 1):
        threats = []
        for pid in tracked:
            answer = result[f"player-{pid}"].ticks[t].answer
            if answer:
                threats.append(f"player {pid} can be shot by {sorted(answer)}")
        status = "; ".join(threats) if threats else "everyone is safe"
        print(f"t={t:2d}: {status}")

    total = sum(result[f"player-{pid}"].total_time for pid in tracked)
    print(
        f"\n{N_TRACKED} continuous queries x {TICKS + 1} executions "
        f"took {total * 1e3:.1f} ms total"
    )


if __name__ == "__main__":
    main()
