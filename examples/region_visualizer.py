"""Watch IGERN's monitored region evolve, rendered in the terminal.

Shows the paper's central idea live: a single bounded region around the
query (``.`` = alive cells, blank = pruned cells, ``Q`` = the query,
``C`` = monitored candidates, ``*``/``o`` = other objects) shrinking and
re-shaping as everything moves.

Run with::

    python examples/region_visualizer.py
"""

from repro import (
    IGERNMonoQuery,
    QueryPosition,
    WorkloadSpec,
    build_simulator,
    central_object,
)
from repro.viz import render_query_state

TICKS = 6


def main() -> None:
    sim = build_simulator(
        WorkloadSpec(n_objects=300, grid_size=24, seed=13, network="grid_city")
    )
    qid = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    sim.add_query("rnn", query)

    def show(tick, simulator):
        state = query._state  # the monitored state (internal, for display)
        print(f"--- t={tick}  answer={sorted(query.answer)} "
              f"monitored={query.monitored_count} "
              f"alive cells={query.monitored_region_cells}")
        print(render_query_state(state, simulator.grid))
        print()

    result = sim.run(0)  # run the initial step
    show(0, sim)
    sim.run(TICKS, on_tick=show)


if __name__ == "__main__":
    main()
