"""Regenerate the worked example in docs/ALGORITHM.md.

Run with::

    python docs/walkthrough.py
"""

from repro.core.mono import MonoIGERN
from repro.grid.index import GridIndex
from repro.viz import render_query_state

#: Nine objects around a central query, like the paper's Figure 1.
OBJECTS = {
    1: (0.62, 0.52),  # nearest to q; an RNN
    2: (0.48, 0.70),
    3: (0.30, 0.42),
    4: (0.85, 0.80),
    5: (0.88, 0.78),  # blocks 4
    6: (0.15, 0.85),
    7: (0.10, 0.15),
    8: (0.80, 0.12),
    9: (0.82, 0.15),  # mutually blocking with 8
}
QUERY = (0.5, 0.5)


def main() -> None:
    grid = GridIndex(12)
    for oid, pos in OBJECTS.items():
        grid.insert(oid, pos)

    algo = MonoIGERN(grid)
    state, report = algo.initial(QUERY)
    print("MONO initial:")
    print("  candidates:", sorted(state.candidates))
    print("  answer:", sorted(report.answer))
    print(render_query_state(state, grid))
    print()

    # Object 3 wanders far away; object 7 walks into the region.
    grid.move(3, (0.30, 0.05))
    grid.move(7, (0.40, 0.44))
    report = algo.incremental(state, QUERY)
    print("MONO incremental after moves (3 leaves, 7 enters):")
    print("  candidates:", sorted(state.candidates))
    print("  answer:", sorted(report.answer))
    print(render_query_state(state, grid))


if __name__ == "__main__":
    main()
