#!/usr/bin/env python3
"""Lint gate: no new float-tolerance literals in the geometry/grid layers.

ISSUE-5 moved every numeric tolerance of the geometry and grid code into
``repro.geometry.predicates`` — the adaptive predicates plus a short,
documented list of conservative slacks for quantities with no exact float
referent.  The historical failure mode this repository keeps regressing
into is a *local* ``1e-9``/``1e-12`` constant pasted next to a comparison;
each one is a latent tie-breaking bug at some extent.  This checker fails
the build when one reappears:

- any float literal ``0 < |v| <= 1e-6`` in ``src/repro/geometry`` or
  ``src/repro/grid`` outside ``predicates.py`` (comparisons against
  tolerances belong behind the predicate API);
- any module-level constant in those trees whose name smells like a
  tolerance (``*_EPS``, ``*_TOL``, ``*_EPSILON``, ``*_SLACK``) — even a
  non-literal one, since it re-creates a second home for tolerances.

Docstrings and comments are untouched (the AST never sees comments, and
string constants are skipped).  Run directly or via the tier-1 wrapper
test ``tests/test_tolerance_lint.py``::

    python tools/check_tolerances.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories the ban applies to (recursive).
GATED_DIRS = ("src/repro/geometry", "src/repro/grid")

#: The single module allowed to define tolerances.
ALLOWED = "predicates.py"

#: Literals at or below this magnitude (and nonzero) look like tolerances.
LITERAL_CEILING = 1e-6

_TOLERANCE_NAME = re.compile(r"(_|^)(EPS|EPSILON|TOL|TOLERANCE|SLACK)$")


def _is_tolerance_name(name: str) -> bool:
    return bool(_TOLERANCE_NAME.search(name.upper()))


def check_file(path: Path) -> List[Tuple[int, str]]:
    """All violations in one file as ``(line, message)`` pairs."""
    tree = ast.parse(path.read_text(), filename=str(path))
    out: List[Tuple[int, str]] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            v = node.value
            if v == v and 0.0 < abs(v) <= LITERAL_CEILING:
                out.append(
                    (
                        node.lineno,
                        f"float tolerance literal {v!r}: tolerances live in"
                        " repro/geometry/predicates.py only",
                    )
                )

    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
        for target in targets:
            if _is_tolerance_name(target.id):
                out.append(
                    (
                        node.lineno,
                        f"module-level tolerance constant {target.id!r}:"
                        " define it in repro/geometry/predicates.py instead",
                    )
                )
    return out


def check_tree(root: Path = REPO_ROOT) -> List[str]:
    """All violations under the gated directories, formatted for output."""
    problems: List[str] = []
    for gated in GATED_DIRS:
        base = root / gated
        for path in sorted(base.rglob("*.py")):
            if path.name == ALLOWED:
                continue
            for line, message in check_file(path):
                rel = path.relative_to(root)
                problems.append(f"{rel}:{line}: {message}")
    return problems


def main() -> int:
    problems = check_tree()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(
            f"\n{len(problems)} tolerance violation(s); see"
            " tools/check_tolerances.py for the policy.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
