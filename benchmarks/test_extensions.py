"""Extension experiments beyond the paper's figures.

- update-rate sensitivity: how the per-tick cost responds to the fraction
  of objects that move per tick (the paper always moves everything);
- query-count scalability: total cost of many concurrent queries sharing
  one grid and one update stream.
"""

from conftest import emit

from repro.experiments import figures


def test_update_rate(benchmark):
    result = benchmark.pedantic(lambda: figures.update_rate(), rounds=1, iterations=1)
    emit(result)

    igern = result.series_by_name("IGERN").y
    crnn = result.series_by_name("CRNN").y
    # IGERN stays below CRNN at every update rate.
    assert all(i < c for i, c in zip(igern, crnn))
    # Incremental monitoring benefits from low update rates: the cost at
    # 10% movement is below the cost at 100%.
    assert igern[0] < igern[-1]


def test_query_count(benchmark):
    result = benchmark.pedantic(lambda: figures.query_count(), rounds=1, iterations=1)
    emit(result)

    igern = result.series_by_name("IGERN").y
    crnn = result.series_by_name("CRNN").y
    assert all(i < c for i, c in zip(igern, crnn))
    # Roughly linear growth in the number of queries.
    assert igern[-1] > 5 * igern[0]


def test_k_sweep(benchmark):
    """The RkNN extension: more answers and more work as k grows."""
    result = benchmark.pedantic(lambda: figures.k_sweep(), rounds=1, iterations=1)
    emit(result)

    mono_answers = result.series_by_name("mono answers").y
    assert mono_answers[-1] >= mono_answers[0]
    mono_time = result.series_by_name("mono time (s)").y
    assert mono_time[-1] >= mono_time[0]


def test_data_skew(benchmark):
    """IGERN's advantage is not an artifact of one motion model.

    On the extreme-hotspot clusters workload the fixed 64-grid puts 100+
    objects in the query's cell, inflating IGERN's monitored set until
    the margin can vanish (the Figure 5 grid/density trade-off), so the
    assertion requires a majority of distributions plus the total — not
    unanimity.  See EXPERIMENTS.md.
    """
    result = benchmark.pedantic(lambda: figures.data_skew(), rounds=1, iterations=1)
    emit(result)

    igern = result.series_by_name("IGERN").y
    crnn = result.series_by_name("CRNN").y
    wins = sum(1 for i, c in zip(igern, crnn) if i < c)
    assert wins >= 3
    assert sum(igern) < sum(crnn)


def test_monitored_area(benchmark):
    """The paper's discussion: IGERN monitors ~1/6th of CRNN's area; our
    exact-polygon region comes out even smaller."""
    result = benchmark.pedantic(
        lambda: figures.monitored_area(), rounds=1, iterations=1
    )
    emit(result)

    igern = result.series_by_name("IGERN").y
    crnn = result.series_by_name("CRNN").y
    for i, c in zip(igern, crnn):
        assert i < c / 2.0, "IGERN's region must be well below CRNN's pies"
