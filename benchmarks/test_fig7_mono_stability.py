"""Figure 7: monochromatic stability over time, IGERN vs CRNN.

(a) CPU time per time interval — both algorithms are most expensive at
    the initial step; IGERN stays below CRNN at every interval and its
    incremental performance does not deteriorate over time;
(b) accumulated CPU time — the gap widens the longer the query runs.
"""

from conftest import emit

from repro.analysis.stats import mean
from repro.experiments import figures


def test_fig7_table(benchmark):
    results = benchmark.pedantic(lambda: figures.fig7(), rounds=1, iterations=1)
    emit(results)

    per_tick_i = results["fig7a"].series_by_name("IGERN").y
    per_tick_c = results["fig7a"].series_by_name("CRNN").y
    # IGERN below CRNN at (almost) every plotted interval.
    wins = sum(1 for i, c in zip(per_tick_i, per_tick_c) if i < c)
    assert wins >= len(per_tick_i) - 1

    acc_i = results["fig7b"].series_by_name("IGERN").y
    acc_c = results["fig7b"].series_by_name("CRNN").y
    assert acc_i[-1] < acc_c[-1]
    # The saving grows with the horizon: the gap at the end exceeds the
    # gap at one quarter of the run.
    quarter = len(acc_i) // 4
    assert (acc_c[-1] - acc_i[-1]) > (acc_c[quarter] - acc_i[quarter])

    # Stability: late incremental steps are not systematically more
    # expensive than early ones (no deterioration over time).
    times_i = results["fig7b"].x  # just for length
    n = len(acc_i)
    early = [acc_i[t] - acc_i[t - 1] for t in range(1, n // 3)]
    late = [acc_i[t] - acc_i[t - 1] for t in range(2 * n // 3, n)]
    assert mean(late) < 3.0 * mean(early)
