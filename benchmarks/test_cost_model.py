"""Section 6: the analytical cost model against measured behavior.

Feeds workload parameters measured on a live run (candidate counts and
per-search operation costs) through the paper's closed-form cost functions
and checks that the model predicts the same winners the wall clock shows.
"""

from conftest import emit

from repro.experiments import figures


def test_cost_model_agrees_with_measurement(benchmark):
    result = benchmark.pedantic(
        lambda: figures.cost_model_check(), rounds=1, iterations=1
    )
    emit(result)

    analytical = result.series_by_name("analytical").y
    measured = result.series_by_name("measured wall (s)").y
    igern_mono_a, crnn_a, tpl_a, igern_bi_a, voronoi_a = analytical
    igern_mono_m, crnn_m, tpl_m, igern_bi_m, voronoi_m = measured

    # The model's dominance claims (Section 6).
    assert igern_mono_a <= crnn_a
    assert igern_mono_a <= tpl_a
    assert igern_bi_a <= voronoi_a

    # The measurements agree on the headline winners.
    assert igern_mono_m < crnn_m
    assert igern_bi_m < voronoi_m
