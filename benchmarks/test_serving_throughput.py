"""Sharded serving throughput: the tentpole acceptance benchmark.

A monochromatic monitoring fleet — N_QUERIES standing R-NN queries over
N_OBJECTS moving objects — is served two ways from the same precomputed
update stream:

- **serving**: a :class:`ShardCluster` of N_SHARDS worker processes
  behind the gateway, queries partitioned across shards, every tick's
  updates broadcast and the per-query answers merged at the gateway;
- **single_process**: one :class:`ShardState` (the plain engine —
  ``GridIndex`` + ``TickScheduler`` + ``BatchExecutor`` — with no
  gateway in front) hosting all the queries.

The test asserts bit-identical per-tick answers for every query across
the two deployments — the ISSUE-10 acceptance bar — and writes
``BENCH_serving.json`` with ticks/sec for both plus the gateway's
nearest-rank p50/p99 tick-latency bands.

``SERVING_BENCH_QUICK=1`` selects a small configuration for CI; the
identity assertion is the same in both.  ``SERVING_BENCH_OUT`` redirects
the result JSON.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.serving import QuerySpec, ShardCluster
from repro.serving.shard import ShardConfig, ShardState

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = Path(
    os.environ.get("SERVING_BENCH_OUT")
    or str(REPO_ROOT / "BENCH_serving.json")
)

QUICK = os.environ.get("SERVING_BENCH_QUICK", "") not in ("", "0")
N_OBJECTS = 5_000 if QUICK else 100_000
N_QUERIES = 200 if QUICK else 10_000
N_SHARDS = 2 if QUICK else 4
N_TICKS = 10 if QUICK else 20
GRID_SIZE = 64
#: Mostly-static regime (the paper's stability experiments): 0.1% of the
#: fleet jitters per tick, so the scheduler skips the untouched queries.
MOVE_FRACTION = 0.001
STEP_SIGMA = 0.004


def _make_workload(seed: int = 23):
    """Uniform initial placement plus a per-tick gaussian-jitter script."""
    rng = random.Random(seed)
    positions = {}
    initial = []
    for oid in range(N_OBJECTS):
        x, y = rng.random(), rng.random()
        positions[oid] = (x, y)
        initial.append((oid, x, y, 0))
    n_movers = max(1, int(MOVE_FRACTION * N_OBJECTS))
    script = []
    for _ in range(N_TICKS):
        moves = []
        for oid in rng.sample(range(N_OBJECTS), n_movers):
            ox, oy = positions[oid]
            x = min(1.0, max(0.0, ox + rng.gauss(0.0, STEP_SIGMA)))
            y = min(1.0, max(0.0, oy + rng.gauss(0.0, STEP_SIGMA)))
            positions[oid] = (x, y)
            moves.append((oid, x, y))
        script.append(moves)
    return initial, script


def _query_specs(seed: int = 29):
    rng = random.Random(seed)
    return [
        QuerySpec(name=f"q{i}", point=(rng.random(), rng.random()))
        for i in range(N_QUERIES)
    ]


def _run_cluster(initial, script, specs):
    """Timed region covers subscription, initial eval, and every tick."""
    answers = {}
    with ShardCluster(
        N_SHARDS,
        grid_size=GRID_SIZE,
        transport="process",
        mp_context="fork",
    ) as cluster:
        cluster.load(initial)
        start = time.perf_counter()
        for spec in specs:
            cluster.add_query(spec)
        for name, (answer, _, _) in cluster.initial_eval().answers.items():
            answers[name] = [answer]
        for moves in script:
            result = cluster.tick(moves)
            for name, (answer, _, _) in result.answers.items():
                answers[name].append(answer)
        elapsed = time.perf_counter() - start
        p50 = cluster.tick_latency_percentile(50)
        p99 = cluster.tick_latency_percentile(99)
    return elapsed, p50, p99, answers


def _run_single(initial, script, specs):
    state = ShardState(
        ShardConfig(shard_id=0, n_shards=1, grid_size=GRID_SIZE), initial
    )
    answers = {}
    start = time.perf_counter()
    for spec in specs:
        state.add_query(spec)
    for name, (answer, _, _) in state.initial_eval().answers.items():
        answers[name] = [answer]
    for moves in script:
        result = state.tick(moves, [], [])
        for name, (answer, _, _) in result.answers.items():
            answers[name].append(answer)
    elapsed = time.perf_counter() - start
    return elapsed, answers


def test_serving_throughput_and_answer_identity():
    initial, script = _make_workload()
    specs = _query_specs()

    elapsed_serving, p50, p99, answers_serving = _run_cluster(
        initial, script, specs
    )
    elapsed_single, answers_single = _run_single(initial, script, specs)

    # Bit-identical answers: every query, every tick, both deployments.
    assert set(answers_serving) == set(answers_single)
    for name in answers_single:
        assert len(answers_serving[name]) == N_TICKS + 1
        for tick, (a_shard, a_single) in enumerate(
            zip(answers_serving[name], answers_single[name])
        ):
            assert a_shard == a_single, f"{name} diverged at tick {tick}"

    result = {
        "workload": {
            "n_objects": N_OBJECTS,
            "n_queries": N_QUERIES,
            "n_ticks": N_TICKS,
            "n_shards": N_SHARDS,
            "move_fraction": MOVE_FRACTION,
            "grid_size": GRID_SIZE,
            "quick": QUICK,
        },
        "serving": {
            "seconds": elapsed_serving,
            "ticks_per_sec": N_TICKS / elapsed_serving,
            "p50_tick_seconds": p50,
            "p99_tick_seconds": p99,
            "transport": "process",
        },
        "single_process": {
            "seconds": elapsed_single,
            "ticks_per_sec": N_TICKS / elapsed_single,
        },
        "answers_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nserving: {N_QUERIES} queries / {N_OBJECTS} objects on "
        f"{N_SHARDS} shards: {result['serving']['ticks_per_sec']:.1f}"
        f" ticks/s (p50={p50 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms) vs "
        f"{result['single_process']['ticks_per_sec']:.1f} ticks/s"
        f" single-process"
    )

    # The latency samples must exist and be ordered sanely.
    assert 0.0 < p50 <= p99
