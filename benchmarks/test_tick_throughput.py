"""Multi-query tick throughput: event-driven scheduler vs. evaluate-all.

The ISSUE-2 acceptance benchmark.  A facility-monitoring workload — the
bichromatic setting the paper motivates with battlefield/supply examples —
registers 16 continuous R-NN queries over static A facilities while 10%
of the B users move each tick (``move_fraction=0.1``, the mostly-static
regime of the paper's stability experiments).  The same deterministic
update stream is replayed through two simulators:

- **oracle**: ``scheduler=False`` — the pre-PR engine, per-update grid
  maintenance and every query evaluated every tick;
- **scheduled**: ``scheduler=True`` — batched ``apply_updates`` deltas
  intersected with query footprints, unaffected queries skipped.

The test asserts bit-identical per-tick answers for every query, a ≥3x
wall-clock speedup, and writes ``BENCH_tick_throughput.json`` at the repo
root with ticks/sec and queries-evaluated counts for both configurations.

``TICK_BENCH_QUICK=1`` selects a smaller configuration for CI; the
correctness (identity) assertion is identical in both.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.engine.simulation import Simulator
from repro.geometry import predicates
from repro.geometry.point import Point
from repro.queries.base import QueryPosition
from repro.queries.igern_bi import IGERNBiQuery

REPO_ROOT = Path(__file__).resolve().parent.parent
#: ``TICK_BENCH_OUT`` redirects the result JSON (the perf-regression
#: harness measures into a scratch directory instead of overwriting the
#: committed baseline at the repo root).
RESULT_PATH = Path(
    os.environ.get("TICK_BENCH_OUT")
    or str(REPO_ROOT / "BENCH_tick_throughput.json")
)

QUICK = os.environ.get("TICK_BENCH_QUICK", "") not in ("", "0")
N_A = 1800 if QUICK else 3600
N_B = 300 if QUICK else 400
N_TICKS = 60 if QUICK else 120
N_QUERIES = 16
MOVE_FRACTION = 0.1
SPEEDUP_FLOOR = 3.0
#: Ceiling on the adaptive predicates' exact-fallback rate over the whole
#: benchmark: on non-adversarial workloads the float filters must decide
#: essentially everything (the ISSUE-5 acceptance bound).
FALLBACK_RATE_CEILING = 0.01
#: Timed repeats per configuration; the best run is scored, which
#: filters scheduler-independent machine noise out of the ratio.
BEST_OF = 3


class ReplayGenerator:
    """Replays a precomputed update script, one move list per tick.

    The script is synthesized once, outside the timed region, so the
    measurement compares *engine* cost only; both simulators replay the
    exact same stream — the property the lockstep comparison needs.
    """

    def __init__(self, initial, script):
        self._initial = initial
        self._script = script
        self._next = 0

    def initial(self):
        return iter(self._initial)

    def step(self, dt):
        moves = self._script[self._next]
        self._next += 1
        return moves


def _make_workload(seed: int = 17, step_sigma: float = 0.008):
    """Static A facilities + random-walking B users, 10% of B per tick."""
    rng = random.Random(seed)
    initial = [
        (f"a{i}", Point(rng.random(), rng.random()), "A") for i in range(N_A)
    ]
    users = {f"b{i}": Point(rng.random(), rng.random()) for i in range(N_B)}
    initial.extend((oid, pos, "B") for oid, pos in users.items())
    user_ids = sorted(users)
    n_movers = max(1, int(MOVE_FRACTION * N_B))
    script = []
    for _ in range(N_TICKS):
        moves = []
        for oid in rng.sample(user_ids, n_movers):
            old = users[oid]
            x = min(1.0, max(0.0, old.x + rng.gauss(0.0, step_sigma)))
            y = min(1.0, max(0.0, old.y + rng.gauss(0.0, step_sigma)))
            p = Point(x, y)
            users[oid] = p
            moves.append((oid, p))
        script.append(moves)
    return initial, script


def _query_positions(n: int):
    """A fixed lattice of query points away from the space boundary."""
    side = int(round(n ** 0.5))
    span = [0.2 + 0.6 * i / (side - 1) for i in range(side)]
    return [(x, y) for x in span for y in span][:n]


def _build(workload, scheduler: bool) -> Simulator:
    initial, script = workload
    sim = Simulator(ReplayGenerator(initial, script), grid_size=64, scheduler=scheduler)
    for i, (x, y) in enumerate(_query_positions(N_QUERIES)):
        sim.add_query(
            f"q{i}",
            IGERNBiQuery(sim.grid, QueryPosition(sim.grid, fixed=(x, y))),
        )
    return sim


def _run(sim: Simulator):
    """Initial step untimed, then N_TICKS timed; returns per-tick answers."""
    answers = {name: [] for name in sim.query_names()}
    for name, m in sim.execute_queries().items():
        answers[name].append(m.answer)
    start = time.perf_counter()
    for _ in range(N_TICKS):
        for name, m in sim.step().items():
            answers[name].append(m.answer)
    elapsed = time.perf_counter() - start
    return elapsed, answers


def _best_of(workload, scheduler: bool):
    """Best timed run of BEST_OF identical replays (fresh simulator each).

    The replay is deterministic, so every repeat produces the same
    answers; only the wall clock varies with machine noise.
    """
    best_elapsed = None
    for _ in range(BEST_OF):
        sim = _build(workload, scheduler=scheduler)
        elapsed, answers = _run(sim)
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return best_elapsed, answers, sim


def test_tick_throughput_and_answer_identity():
    workload = _make_workload()

    hits_before = predicates.STATS.filter_hits
    fallbacks_before = predicates.STATS.exact_fallbacks
    elapsed_on, answers_on, sim_on = _best_of(workload, scheduler=True)
    elapsed_off, answers_off, sim_off = _best_of(workload, scheduler=False)
    hits = predicates.STATS.filter_hits - hits_before
    fallbacks = predicates.STATS.exact_fallbacks - fallbacks_before
    fallback_rate = fallbacks / (hits + fallbacks) if hits + fallbacks else 0.0

    # Bit-identical answers, every query, every tick — fail on divergence.
    for name in answers_off:
        for tick, (a_on, a_off) in enumerate(
            zip(answers_on[name], answers_off[name])
        ):
            assert a_on == a_off, f"{name} diverged at tick {tick}"

    evaluated_on = sim_on.queries_evaluated
    skipped_on = sim_on.ticks_skipped
    evaluated_off = sim_off.queries_evaluated
    speedup = elapsed_off / elapsed_on

    result = {
        "workload": {
            "n_a": N_A,
            "n_b": N_B,
            "n_queries": N_QUERIES,
            "n_ticks": N_TICKS,
            "move_fraction": MOVE_FRACTION,
            "grid_size": 64,
            "quick": QUICK,
        },
        "scheduler_on": {
            "seconds": elapsed_on,
            "ticks_per_sec": N_TICKS / elapsed_on,
            "queries_evaluated": evaluated_on,
            "ticks_skipped": skipped_on,
        },
        "scheduler_off": {
            "seconds": elapsed_off,
            "ticks_per_sec": N_TICKS / elapsed_off,
            "queries_evaluated": evaluated_off,
            "ticks_skipped": sim_off.ticks_skipped,
        },
        "speedup": speedup,
        "answers_identical": True,
        "predicates": {
            "filter_hits": hits,
            "exact_fallbacks": fallbacks,
            "fallback_rate": fallback_rate,
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\ntick throughput: {result['scheduler_on']['ticks_per_sec']:.1f}/s "
        f"scheduled vs {result['scheduler_off']['ticks_per_sec']:.1f}/s oracle "
        f"({speedup:.2f}x, {skipped_on} skips, "
        f"{evaluated_on}/{evaluated_off} evaluations)"
    )

    # Skipping must actually happen, and the oracle never skips.
    assert sim_off.ticks_skipped == 0
    assert skipped_on > 0
    assert evaluated_on < evaluated_off
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected ≥{SPEEDUP_FLOOR}x, measured {speedup:.2f}x"
    )
    # The adaptive predicates must be deciding by float filter on this
    # non-adversarial workload; a rate spike means a broken error bound.
    assert fallback_rate < FALLBACK_RATE_CEILING, (
        f"exact-fallback rate {fallback_rate:.4%} over {hits + fallbacks}"
        f" predicate calls exceeds {FALLBACK_RATE_CEILING:.0%}"
    )
