"""Answer-lease hold benchmark: publications skipped, answers identical.

A low-churn monitoring workload — the regime safe-region answer leases
exist for.  Nine fixed monochromatic queries each watch a small cluster
of objects; every tick a couple of objects per cluster jitter by a
displacement orders of magnitude inside any lease budget, and every
``BREAK_EVERY`` ticks one background object jumps across the space,
breaking every outstanding lease (the re-issue path).  The same
deterministic script is replayed through two query managers:

- **oracle**: ``scheduler=False`` — every query evaluated every tick;
- **leased**: ``scheduler=True, batch=True, lease=True`` — held leases
  skip the evaluation *and* the subscriber publication.

The test asserts bit-identical per-tick answers for every query, that at
least half of all possible subscriber publications were suppressed by
held leases (``lease_publications_skipped_total``), a hold-ratio floor,
and that the break ticks actually broke leases (the re-issue machinery
runs).  Results land in ``BENCH_lease_hold.json`` at the repo root and
gate through ``igern bench run|check``.

``LEASE_BENCH_QUICK=1`` selects a smaller configuration for CI; the
identity and hold-rate assertions are identical in both.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro import obs
from repro.engine.manager import ContinuousQueryManager
from repro.engine.simulation import Simulator
from repro.geometry.point import Point
from repro.queries.base import QueryPosition
from repro.queries.igern_mono import IGERNMonoQuery

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = Path(
    os.environ.get("LEASE_BENCH_OUT")
    or str(REPO_ROOT / "BENCH_lease_hold.json")
)

QUICK = os.environ.get("LEASE_BENCH_QUICK", "") not in ("", "0")
#: 3x3 lattice of fixed query points.
QUERY_POINTS = [
    (x, y) for x in (0.25, 0.50, 0.75) for y in (0.25, 0.50, 0.75)
]
CLUSTER_SIZE = 12
CLUSTER_RADIUS = 0.04
N_BACKGROUND = 150 if QUICK else 500
N_TICKS = 40 if QUICK else 80
#: Per-tick jitter scale — far inside any plausible lease budget, so the
#: cumulative per-tick-maximum accounting stays within budget between
#: breaks.
JITTER_SIGMA = 1e-7
JITTERS_PER_CLUSTER = 2
JITTERS_BACKGROUND = 5
#: One cross-space jump every this many ticks: larger than any budget,
#: so it must break every outstanding lease and force re-issue.
BREAK_EVERY = 20
#: Acceptance floor: at least half of all possible subscriber
#: publications suppressed by held leases.
PUBLICATION_SKIP_FLOOR = 0.5
HOLD_RATIO_FLOOR = 0.6


class ReplayGenerator:
    """Replays a precomputed update script, one move list per tick."""

    def __init__(self, initial, script):
        self._initial = initial
        self._script = script
        self._next = 0

    def initial(self):
        return iter(self._initial)

    def step(self, dt):
        moves = self._script[self._next]
        self._next += 1
        return moves


def _make_workload(seed: int = 23):
    """Clustered objects around each query point plus background noise."""
    rng = random.Random(seed)
    initial = []
    positions = {}
    clusters = []
    oid = 0
    for qx, qy in QUERY_POINTS:
        members = []
        for _ in range(CLUSTER_SIZE):
            x = qx + rng.uniform(-CLUSTER_RADIUS, CLUSTER_RADIUS)
            y = qy + rng.uniform(-CLUSTER_RADIUS, CLUSTER_RADIUS)
            positions[oid] = (x, y)
            initial.append((oid, Point(x, y), 0))
            members.append(oid)
            oid += 1
        clusters.append(members)
    background = []
    for _ in range(N_BACKGROUND):
        x, y = rng.random(), rng.random()
        positions[oid] = (x, y)
        initial.append((oid, Point(x, y), 0))
        background.append(oid)
        oid += 1

    script = []
    for tick in range(N_TICKS):
        moves = []
        movers = []
        for members in clusters:
            movers.extend(rng.sample(members, JITTERS_PER_CLUSTER))
        movers.extend(rng.sample(background, JITTERS_BACKGROUND))
        for mover in movers:
            x, y = positions[mover]
            nx = min(1.0, max(0.0, x + rng.gauss(0.0, JITTER_SIGMA)))
            ny = min(1.0, max(0.0, y + rng.gauss(0.0, JITTER_SIGMA)))
            positions[mover] = (nx, ny)
            moves.append((mover, Point(nx, ny)))
        if tick and tick % BREAK_EVERY == 0:
            jumper = rng.choice(background)
            nx, ny = rng.random(), rng.random()
            positions[jumper] = (nx, ny)
            moves.append((jumper, Point(nx, ny)))
        script.append(moves)
    return initial, script


def _build(workload, lease: bool) -> ContinuousQueryManager:
    initial, script = workload
    if lease:
        sim = Simulator(
            ReplayGenerator(initial, script),
            grid_size=32,
            scheduler=True,
            batch=True,
            lease=True,
        )
    else:
        sim = Simulator(
            ReplayGenerator(initial, script), grid_size=32, scheduler=False
        )
    manager = ContinuousQueryManager(sim)
    for i, (x, y) in enumerate(QUERY_POINTS):
        manager.register(
            f"q{i}",
            IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, fixed=(x, y))),
        )
    return manager


def _run(manager: ContinuousQueryManager):
    """Initial announce untimed, then N_TICKS timed; per-tick answers."""
    sim = manager.simulator
    names = list(sim.query_names())
    answers = {name: [] for name in names}
    manager.step()  # tick 0: initial evaluations, first announcements
    for name in names:
        answers[name].append(sim.query(name).answer)
    start = time.perf_counter()
    for _ in range(N_TICKS - 1):
        manager.step()
        for name in names:
            answers[name].append(sim.query(name).answer)
    elapsed = time.perf_counter() - start
    return elapsed, answers


def test_lease_hold_rate_and_answer_identity():
    workload = _make_workload()
    _, registry = obs.enable()
    registry.clear()
    try:
        manager_lease = _build(workload, lease=True)
        elapsed_lease, answers_lease = _run(manager_lease)
        manager_oracle = _build(workload, lease=False)
        elapsed_oracle, answers_oracle = _run(manager_oracle)

        publications_skipped = sum(
            counter.value
            for counter in registry.collect()
            if counter.name == "lease_publications_skipped_total"
        )
    finally:
        obs.disable()

    # Bit-identical answers, every query, every tick — a held lease
    # serves the issue-time answer verbatim, so it must be the exact one.
    for name in answers_oracle:
        for tick, (leased, exact) in enumerate(
            zip(answers_lease[name], answers_oracle[name])
        ):
            assert leased == exact, f"{name} diverged at tick {tick}"

    sim = manager_lease.simulator
    issued = sim.leases_issued
    held = sim.leases_held
    broken = sim.leases_broken
    hold_ratio = sim.lease_hold_ratio
    # Ticks after the initial announcement, per query, are the
    # publications a held lease could suppress.
    possible = len(QUERY_POINTS) * (N_TICKS - 1)
    skip_rate = publications_skipped / possible if possible else 0.0

    result = {
        "workload": {
            "n_queries": len(QUERY_POINTS),
            "cluster_size": CLUSTER_SIZE,
            "n_background": N_BACKGROUND,
            "n_ticks": N_TICKS,
            "jitter_sigma": JITTER_SIGMA,
            "break_every": BREAK_EVERY,
            "grid_size": 32,
            "quick": QUICK,
        },
        "leases": {
            "issued": issued,
            "held": held,
            "broken": broken,
            "hold_ratio": hold_ratio,
        },
        "publications": {
            "skipped": publications_skipped,
            "possible": possible,
            "skip_rate": skip_rate,
        },
        "timing": {
            "lease_seconds": elapsed_lease,
            "oracle_seconds": elapsed_oracle,
        },
        "answers_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nlease hold: {publications_skipped:.0f}/{possible} publications"
        f" skipped ({skip_rate:.1%}), hold ratio {hold_ratio:.3f}"
        f" ({issued} issued, {held} held, {broken} broken)"
    )

    assert issued >= len(QUERY_POINTS)
    # The cross-space jumps must actually break leases — otherwise the
    # budget accounting is not running and "held" means nothing.
    assert broken > 0
    assert hold_ratio >= HOLD_RATIO_FLOOR, (
        f"hold ratio {hold_ratio:.3f} under the {HOLD_RATIO_FLOOR} floor"
    )
    assert skip_rate >= PUBLICATION_SKIP_FLOOR, (
        f"only {skip_rate:.1%} of subscriber publications were suppressed"
        f" by held leases (floor {PUBLICATION_SKIP_FLOOR:.0%})"
    )
