"""Design-choice ablations called out in DESIGN.md.

- pruning policy: the paper's literal rule minimizes the monitored set
  (its ~3.5 objects) but unbounds the region; the guarded default keeps
  the region tight at the cost of a few more monitored objects; no
  pruning maximizes the monitored set;
- pie count: six pies are the minimum for monochromatic correctness, and
  every extra pie adds monitored candidates and per-tick searches.
"""

from conftest import LiveWorkload, bench_tick, emit

from repro.engine.workload import WorkloadSpec
from repro.experiments import figures
from repro.queries import IGERNMonoQuery


def test_ablation_prune_modes(benchmark):
    result = benchmark.pedantic(
        lambda: figures.ablation_prune_modes(), rounds=1, iterations=1
    )
    emit(result)
    guarded_mon, literal_mon, off_mon = result.series_by_name("avg monitored").y
    assert literal_mon < guarded_mon < off_mon
    guarded_t, literal_t, off_t = result.series_by_name("avg CPU time (s)").y
    # The guarded policy must not be slower than both alternatives.
    assert guarded_t <= max(literal_t, off_t)


def test_ablation_pie_count(benchmark):
    result = benchmark.pedantic(
        lambda: figures.ablation_pie_count(), rounds=1, iterations=1
    )
    emit(result)
    monitored = result.series_by_name("avg monitored").y
    assert monitored[0] <= monitored[-1]


def _workload(mode):
    spec = WorkloadSpec(n_objects=5000, grid_size=64, seed=7)
    return LiveWorkload(spec, lambda g, p: IGERNMonoQuery(g, p, prune=mode))


def test_prune_guarded_tick(benchmark):
    bench_tick(benchmark, _workload("guarded"))


def test_prune_literal_tick(benchmark):
    bench_tick(benchmark, _workload("literal"), rounds=10)


def test_prune_off_tick(benchmark):
    bench_tick(benchmark, _workload("off"))
