"""Figure 8: bichromatic scalability, IGERN vs repeated Voronoi.

(a) average CPU time per tick vs number of objects — IGERN maintains the
    answer instead of reconstructing the Voronoi cell and wins;
(b) monitored objects — the bichromatic IGERN monitors about as few
    objects as the monochromatic one, despite the harder problem.
"""

from conftest import LiveWorkload, bench_tick, emit

from repro.engine.workload import WorkloadSpec
from repro.experiments import figures
from repro.queries import IGERNBiQuery, VoronoiRepeatQuery


def test_fig8_table(benchmark):
    results = benchmark.pedantic(lambda: figures.fig8(), rounds=1, iterations=1)
    emit(results)

    igern = results["fig8a"].series_by_name("IGERN").y
    voronoi = results["fig8a"].series_by_name("Voronoi").y
    # Individual points are short sub-millisecond measurements; the
    # decisive check is the total, backed by a majority of point wins.
    assert sum(igern) < sum(voronoi)
    wins = sum(1 for i, v in zip(igern, voronoi) if i < v)
    assert wins >= len(igern) // 2

    mono = results["fig8b"].series_by_name("IGERN (mono)").y
    bi = results["fig8b"].series_by_name("IGERN (bi)").y
    # "almost has a similar performance for both cases": within 2x.
    for m, b in zip(mono, bi):
        assert b <= 2.0 * m + 2.0


def _workload(query_factory, n=8000):
    spec = WorkloadSpec(n_objects=n, grid_size=64, seed=7, bichromatic=True)
    return LiveWorkload(spec, query_factory, category="A")


def test_fig8_igern_bi_tick(benchmark):
    bench_tick(benchmark, _workload(lambda g, p: IGERNBiQuery(g, p)))


def test_fig8_voronoi_tick(benchmark):
    bench_tick(benchmark, _workload(lambda g, p: VoronoiRepeatQuery(g, p)))
