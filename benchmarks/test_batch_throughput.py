"""Shared-execution batch throughput: batched vs. per-query evaluation.

The ISSUE-4 acceptance benchmark.  A dispatch-center workload — many
operators watching the *same* hot zone — registers 32 continuous R-NN
queries on a tight lattice over a clustered B population, so the query
footprints overlap almost completely.  Every tick moves a fixed number
of B users inside the cluster, touching every footprint: the PR 2
scheduler can skip nothing, and the whole tick cost is query evaluation.
The same deterministic update stream is replayed through two simulators,
both scheduled:

- **unbatched**: ``batch=False`` — the PR 2 execution path, every
  affected query probing the grid independently;
- **batched**: ``batch=True`` — the shared tick context memoizing
  witness probes, nearest searches, cell snapshots and half-plane
  classifications across the co-evaluated queries.

The test asserts bit-identical per-tick answers for every query, that
the shared context actually served probes (hits > 0), a ≥1.5x tick
throughput gain, and writes ``BENCH_batch_throughput.json`` at the repo
root with ticks/sec, probe accounting, and the mean sharing ratio.

``BATCH_BENCH_QUICK=1`` selects a smaller configuration for CI; the
correctness (identity) assertion is identical in both.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.engine.simulation import Simulator
from repro.geometry.point import Point
from repro.queries.base import QueryPosition
from repro.queries.igern_bi import IGERNBiQuery

REPO_ROOT = Path(__file__).resolve().parent.parent
#: ``BATCH_BENCH_OUT`` redirects the result JSON (the perf-regression
#: harness measures into a scratch directory instead of overwriting the
#: committed baseline at the repo root).
RESULT_PATH = Path(
    os.environ.get("BATCH_BENCH_OUT")
    or str(REPO_ROOT / "BENCH_batch_throughput.json")
)

QUICK = os.environ.get("BATCH_BENCH_QUICK", "") not in ("", "0")
#: Facilities are deliberately *sparse*: each query's nearest facility is
#: far away, so the alive regions are large and genuinely overlap across
#: the lattice — the regime where verification probes are expensive and
#: shared.  (A dense A population shrinks every region to near-disjoint
#: slivers, and batching has nothing to share — measured 0.83x at
#: N_A=1500; see docs/PERFORMANCE.md.)
N_A = 120
N_B = 160
N_MOVERS = 60
N_TICKS = 40 if QUICK else 100
N_QUERIES = 32
GRID_SIZE = 64
SPEEDUP_FLOOR = 1.5
#: Timed repeats per configuration; the best run is scored, which
#: filters batching-independent machine noise out of the ratio.
BEST_OF = 3

#: The hot zone: every query, and the whole B population, lives here.
ZONE_CENTER = (0.5, 0.5)
ZONE_SIGMA = 0.05
LATTICE_LO, LATTICE_HI = 0.42, 0.58


class ReplayGenerator:
    """Replays a precomputed update script, one move list per tick.

    Synthesized once, outside the timed region, so the measurement
    compares *engine* cost only; both simulators replay the exact same
    stream — the property the identity comparison needs.
    """

    def __init__(self, initial, script):
        self._initial = initial
        self._script = script
        self._next = 0

    def initial(self):
        return iter(self._initial)

    def step(self, dt):
        moves = self._script[self._next]
        self._next += 1
        return moves


def _clustered(rng) -> Point:
    cx, cy = ZONE_CENTER
    return Point(
        min(1.0, max(0.0, rng.gauss(cx, ZONE_SIGMA))),
        min(1.0, max(0.0, rng.gauss(cy, ZONE_SIGMA))),
    )


def _make_workload(seed: int = 23):
    """Sparse uniform static A facilities; B users clustered in the hot zone,
    ``N_MOVERS`` of them re-drawn inside the zone every tick — every
    query footprint is touched every tick, so nothing can be skipped."""
    rng = random.Random(seed)
    initial = [
        (f"a{i}", Point(rng.random(), rng.random()), "A") for i in range(N_A)
    ]
    users = {f"b{i}": _clustered(rng) for i in range(N_B)}
    initial.extend((oid, pos, "B") for oid, pos in users.items())
    user_ids = sorted(users)
    script = []
    for _ in range(N_TICKS):
        moves = []
        for oid in rng.sample(user_ids, N_MOVERS):
            p = _clustered(rng)
            users[oid] = p
            moves.append((oid, p))
        script.append(moves)
    return initial, script


def _query_positions(n: int):
    """A tight lattice inside the hot zone: overlapping footprints."""
    side = int(round(n ** 0.5))
    while side * side < n:
        side += 1
    span = [
        LATTICE_LO + (LATTICE_HI - LATTICE_LO) * i / (side - 1)
        for i in range(side)
    ]
    return [(x, y) for x in span for y in span][:n]


def _build(workload, batch: bool) -> Simulator:
    initial, script = workload
    sim = Simulator(
        ReplayGenerator(initial, script),
        grid_size=GRID_SIZE,
        scheduler=True,
        batch=batch,
    )
    for i, (x, y) in enumerate(_query_positions(N_QUERIES)):
        sim.add_query(
            f"q{i}",
            IGERNBiQuery(sim.grid, QueryPosition(sim.grid, fixed=(x, y))),
        )
    return sim


def _run(sim: Simulator):
    """Initial step untimed, then N_TICKS timed; returns per-tick answers."""
    answers = {name: [] for name in sim.query_names()}
    for name, m in sim.execute_queries().items():
        answers[name].append(m.answer)
    start = time.perf_counter()
    for _ in range(N_TICKS):
        for name, m in sim.step().items():
            answers[name].append(m.answer)
    elapsed = time.perf_counter() - start
    return elapsed, answers


def _best_of(workload, batch: bool):
    """Best timed run of BEST_OF identical replays (fresh simulator each)."""
    best_elapsed = None
    for _ in range(BEST_OF):
        sim = _build(workload, batch=batch)
        elapsed, answers = _run(sim)
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return best_elapsed, answers, sim


def test_batch_throughput_and_answer_identity():
    workload = _make_workload()

    elapsed_batch, answers_batch, sim_batch = _best_of(workload, batch=True)
    elapsed_plain, answers_plain, sim_plain = _best_of(workload, batch=False)

    # Bit-identical answers, every query, every tick — fail on divergence.
    for name in answers_plain:
        for tick, (a_batch, a_plain) in enumerate(
            zip(answers_batch[name], answers_plain[name])
        ):
            assert a_batch == a_plain, f"{name} diverged at tick {tick}"

    hits = sim_batch.batch_probe_hits
    misses = sim_batch.batch_probe_misses
    sharing = hits / (hits + misses) if hits + misses else 0.0
    speedup = elapsed_plain / elapsed_batch

    result = {
        "workload": {
            "n_a": N_A,
            "n_b": N_B,
            "n_movers": N_MOVERS,
            "n_queries": N_QUERIES,
            "n_ticks": N_TICKS,
            "grid_size": GRID_SIZE,
            "quick": QUICK,
        },
        "batched": {
            "seconds": elapsed_batch,
            "ticks_per_sec": N_TICKS / elapsed_batch,
            "probe_hits": hits,
            "probe_misses": misses,
            "sharing_ratio": sharing,
        },
        "unbatched": {
            "seconds": elapsed_plain,
            "ticks_per_sec": N_TICKS / elapsed_plain,
            "probe_hits": sim_plain.batch_probe_hits,
            "probe_misses": sim_plain.batch_probe_misses,
        },
        "speedup": speedup,
        "answers_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nbatch throughput: {result['batched']['ticks_per_sec']:.1f}/s "
        f"batched vs {result['unbatched']['ticks_per_sec']:.1f}/s unbatched "
        f"({speedup:.2f}x, sharing {sharing:.1%}, "
        f"{hits} hits / {misses} misses)"
    )

    # Sharing must actually happen, and only on the batched side.
    assert hits > 0
    assert sim_plain.batch_probe_hits == 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected ≥{SPEEDUP_FLOOR}x, measured {speedup:.2f}x"
    )
