"""Large-N substrate throughput: columnar store vs. the mapping reference.

The ISSUE-7 acceptance benchmark.  A city-scale population — 100k
uniformly distributed moving objects, probed from a 64-point query
lattice — is driven through the grid substrate twice, differing in
exactly one knob: the storage backend.

Each timed tick is one simulation tick's worth of substrate work, the
layer the columnar rewrite targets:

- ``GridIndex.apply_updates`` absorbs a 2k-object movement batch (the
  columnar side takes the vectorized bulk-move path, the mapping side
  the per-object dict updates);
- per query point, the three full-scan kernels every executor leans on:
  ``count_closer_than`` (no ``stop_at`` — the whole-slice count),
  ``witnesses_closer_than`` (materializing the in-range witnesses) and
  ``nearest`` (best-first over whole-cell slices).

Early-exit probes (``stop_at``, ``first_closer_than``) are deliberately
absent: they walk rows one by one on both backends (see
``GridSearch.count_closer_than``), so they measure traversal, not
layout.  The grid is coarse for the population (~100 rows per cell) so
cell scans produce fat slices — the regime the columnar layout exists
for.

The test asserts bit-identical kernel results on both backends (counts,
distance-sorted witness rows, nearest ids), that the vectorized filter
actually classified rows, a backend speedup floor (≥3x full, ≥2x
quick), and writes ``BENCH_large_n.json`` at the repo root with
ticks/sec and the store's row accounting.

``LARGE_N_BENCH_QUICK=1`` selects a CI-sized configuration that keeps
the rows-per-cell density (and therefore the slice shape) of the full
run; ``LARGE_N_BENCH_OUT`` redirects the result JSON.
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from pathlib import Path

from repro.grid.index import GridIndex
from repro.grid.search import GridSearch
from repro.grid.store import STATS as STORE_STATS

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = Path(
    os.environ.get("LARGE_N_BENCH_OUT")
    or str(REPO_ROOT / "BENCH_large_n.json")
)

QUICK = os.environ.get("LARGE_N_BENCH_QUICK", "") not in ("", "0")

#: Full: 100k objects on a 32x32 grid — ~98 rows per cell.  Quick keeps
#: the density (~98 rows per cell at 25k/16x16) so the kernels see the
#: same slice shape and the speedup stays comparable under the shared
#: ``bench check --quick`` band.
N_OBJECTS = 25_000 if QUICK else 100_000
GRID_SIZE = 16 if QUICK else 32
N_MOVERS = 500 if QUICK else 2_000
N_TICKS = 6 if QUICK else 10
N_QUERIES = 64
#: Probe radius sized so each scan examines a few thousand rows
#: (~pi * r^2 * N), the footprint of a verification pass over a
#: mid-sized monitored region.
RADIUS = 0.15
SPEEDUP_FLOOR = 2.0 if QUICK else 3.0
#: Timed repeats per backend; the best run is scored.
BEST_OF = 3


def _make_workload(seed: int = 7):
    """Uniform objects; ``N_MOVERS`` uniformly re-drawn every tick."""
    rng = random.Random(seed)
    initial = [
        (f"o{i}", (rng.random(), rng.random())) for i in range(N_OBJECTS)
    ]
    ids = [oid for oid, _ in initial]
    script = []
    for _ in range(N_TICKS):
        script.append(
            [
                (oid, (rng.random(), rng.random()))
                for oid in rng.sample(ids, N_MOVERS)
            ]
        )
    return initial, script


def _query_positions(n: int):
    """An evenly spaced lattice across the unit square."""
    side = int(round(n ** 0.5))
    while side * side < n:
        side += 1
    span = [(i + 0.5) / side for i in range(side)]
    return [(x, y) for x in span for y in span][:n]


def _run(workload, store: str):
    """Replay the update script, probing every query point each tick.

    Returns ``(elapsed, results)`` where ``results`` is one row per
    (tick, query): the in-range count, the distance-sorted witness
    list and the nearest object — the identity contract between the
    two backends.
    """
    initial, script = workload
    grid = GridIndex(GRID_SIZE, store=store)
    for oid, pos in initial:
        grid.insert(oid, pos)
    search = GridSearch(grid)
    queries = _query_positions(N_QUERIES)
    r2 = RADIUS * RADIUS
    results = []
    start = time.perf_counter()
    for moves in script:
        grid.apply_updates(moves, reuse_scratch=True)
        for q in queries:
            count = search.count_closer_than(q, threshold_sq=r2)
            witnesses = search.witnesses_closer_than(q, r2)
            nn = search.nearest(q)
            results.append((count, witnesses, nn))
    elapsed = time.perf_counter() - start
    # Witness rows surface in backend-specific scan order; canonicalize
    # outside the timed region (ordering is not substrate work).
    for _, witnesses, _ in results:
        witnesses.sort()
    return elapsed, results


def _best_of(workload, store: str):
    """Best timed run of BEST_OF identical replays, plus the columnar
    store counter deltas of one run (deterministic per replay)."""
    best_elapsed = None
    results = None
    stats = None
    for _ in range(BEST_OF):
        before = (
            STORE_STATS.rows_scanned,
            STORE_STATS.filter_rows,
            STORE_STATS.exact_rows,
        )
        elapsed, results = _run(workload, store=store)
        stats = (
            STORE_STATS.rows_scanned - before[0],
            STORE_STATS.filter_rows - before[1],
            STORE_STATS.exact_rows - before[2],
        )
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return best_elapsed, results, stats


def test_large_n_throughput_and_result_identity():
    workload = _make_workload()

    elapsed_col, results_col, stats_col = _best_of(workload, "columnar")
    elapsed_map, results_map, stats_map = _best_of(workload, "mapping")

    # Bit-identical kernel results, every query, every tick.
    assert len(results_col) == len(results_map)
    for i, (row_col, row_map) in enumerate(zip(results_col, results_map)):
        assert row_col == row_map, f"probe row {i} diverged"

    rows_scanned, filter_rows, exact_rows = stats_col
    speedup = elapsed_map / elapsed_col
    vectorized_fraction = (
        filter_rows / rows_scanned if rows_scanned else 0.0
    )

    result = {
        "workload": {
            "n_objects": N_OBJECTS,
            "n_movers": N_MOVERS,
            "n_queries": N_QUERIES,
            "n_ticks": N_TICKS,
            "grid_size": GRID_SIZE,
            "radius": RADIUS,
            "quick": QUICK,
        },
        "columnar": {
            "seconds": elapsed_col,
            "ticks_per_sec": N_TICKS / elapsed_col,
            "rows_scanned": rows_scanned,
            "filter_rows": filter_rows,
            "exact_rows": exact_rows,
            "vectorized_fraction": vectorized_fraction,
        },
        "mapping": {
            "seconds": elapsed_map,
            "ticks_per_sec": N_TICKS / elapsed_map,
        },
        "speedup": speedup,
        "answers_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nlarge-N throughput: {result['columnar']['ticks_per_sec']:.2f}/s "
        f"columnar vs {result['mapping']['ticks_per_sec']:.2f}/s mapping "
        f"({speedup:.2f}x, {rows_scanned} rows scanned, "
        f"{vectorized_fraction:.1%} filter-decided, "
        f"{exact_rows} exact fallbacks)"
    )

    # The mapping reference never touches the columnar counters.
    assert stats_map == (0, 0, 0)
    # The vectorized filter must actually be doing the classifying.
    assert rows_scanned > 0
    assert filter_rows > 0
    # Sanity: the probes genuinely scan fat slices.
    expected_rows_per_probe = math.pi * RADIUS * RADIUS * N_OBJECTS
    assert rows_scanned > 0.5 * expected_rows_per_probe * N_QUERIES * N_TICKS
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected ≥{SPEEDUP_FLOOR}x, measured {speedup:.2f}x"
    )
