"""Microbenchmarks of the substrate operations.

The grid index absorbs every position update of every object every tick
(the dominant cost of the whole simulation, per profiling), and the NN
search is the shared primitive of every algorithm — regressions here
dwarf any algorithmic difference.
"""

import random

import pytest

from repro.grid.index import GridIndex
from repro.grid.search import GridSearch

N_OBJECTS = 20_000


@pytest.fixture(scope="module")
def loaded_grid():
    rng = random.Random(5)
    grid = GridIndex(64)
    for i in range(N_OBJECTS):
        grid.insert(i, (rng.random(), rng.random()))
    return grid, rng


def test_grid_move_throughput(benchmark, loaded_grid):
    grid, rng = loaded_grid
    moves = [
        (
            rng.randrange(N_OBJECTS),
            (rng.random(), rng.random()),
        )
        for _ in range(1000)
    ]

    def apply_batch():
        for oid, pos in moves:
            grid.move(oid, pos)

    benchmark(apply_batch)


def test_nearest_neighbor_search(benchmark, loaded_grid):
    grid, rng = loaded_grid
    search = GridSearch(grid)
    queries = [(rng.random(), rng.random()) for _ in range(200)]

    def run_queries():
        for q in queries:
            search.nearest(q)

    benchmark(run_queries)


def test_verification_probe(benchmark, loaded_grid):
    grid, rng = loaded_grid
    search = GridSearch(grid)
    probes = [
        ((rng.random(), rng.random()), rng.random() * 0.001)
        for _ in range(200)
    ]

    def run_probes():
        for center, t2 in probes:
            search.count_closer_than(center, threshold_sq=t2, stop_at=1)

    benchmark(run_probes)


def test_range_query(benchmark, loaded_grid):
    grid, rng = loaded_grid
    search = GridSearch(grid)
    queries = [(rng.random(), rng.random()) for _ in range(100)]

    def run_ranges():
        for q in queries:
            search.objects_within(q, 0.02)

    benchmark(run_ranges)
