"""Figure 9: bichromatic stability over time, IGERN vs repeated Voronoi.

(a) CPU time per time interval — the Voronoi rebuild can win only at the
    very first execution (IGERN's initial step does extra bookkeeping to
    set up monitoring); for t > 0 IGERN is consistently cheaper;
(b) accumulated CPU time — IGERN's saving grows with time.
"""

from conftest import emit

from repro.experiments import figures


def test_fig9_table(benchmark):
    results = benchmark.pedantic(lambda: figures.fig9(), rounds=1, iterations=1)
    emit(results)

    per_tick_i = results["fig9a"].series_by_name("IGERN").y
    per_tick_v = results["fig9a"].series_by_name("Voronoi").y
    # For t > 0 IGERN wins on balance (individual intervals are single
    # sub-millisecond samples, so majority rather than unanimity); the
    # decisive trend check is the accumulated series below.
    tail_wins = sum(1 for i, v in zip(per_tick_i[1:], per_tick_v[1:]) if i < v)
    assert tail_wins >= (len(per_tick_i) - 1) // 2

    acc_i = results["fig9b"].series_by_name("IGERN").y
    acc_v = results["fig9b"].series_by_name("Voronoi").y
    assert acc_i[-1] < acc_v[-1]
    quarter = len(acc_i) // 4
    assert (acc_v[-1] - acc_i[-1]) > (acc_v[quarter] - acc_i[quarter])
