"""Figure 6: monochromatic scalability, IGERN vs CRNN.

(a) average CPU time per tick vs number of objects — IGERN wins at every
    size (it monitors one region and a few objects; CRNN always six of
    each);
(b) average number of monitored objects — CRNN pins six; IGERN-literal
    (the paper's pruning rule verbatim) lands around the paper's ~3.5.
"""

from conftest import LiveWorkload, bench_tick, emit

from repro.engine.workload import WorkloadSpec
from repro.experiments import figures
from repro.queries import CRNNQuery, IGERNMonoQuery


def test_fig6_table(benchmark):
    results = benchmark.pedantic(lambda: figures.fig6(), rounds=1, iterations=1)
    emit(results)

    igern = results["fig6a"].series_by_name("IGERN").y
    crnn = results["fig6a"].series_by_name("CRNN").y
    wins = sum(1 for i, c in zip(igern, crnn) if i < c)
    assert wins >= len(igern) - 1, f"IGERN should win (almost) everywhere: {wins}"
    assert sum(igern) < sum(crnn)

    crnn_mon = results["fig6b"].series_by_name("CRNN").y
    assert all(5.0 <= v <= 6.0 for v in crnn_mon), "CRNN monitors six candidates"
    literal_mon = results["fig6b"].series_by_name("IGERN-literal").y
    assert all(v < 6.0 for v in literal_mon), (
        "the paper's pruning rule keeps fewer than six monitored objects"
    )


def _workload(query_factory, n=8000):
    spec = WorkloadSpec(n_objects=n, grid_size=64, seed=7)
    return LiveWorkload(spec, query_factory)


def test_fig6_igern_tick(benchmark):
    bench_tick(benchmark, _workload(lambda g, p: IGERNMonoQuery(g, p)))


def test_fig6_crnn_tick(benchmark):
    bench_tick(benchmark, _workload(lambda g, p: CRNNQuery(g, p)))
