"""Observability overhead: disabled tracing vs the pre-PR hot path.

The search primitives (``GridSearch.nearest`` and friends) are wrapped by
the ``_traced`` decorator, whose disabled path is a single attribute check
before falling through to the original body.  Because the decorator uses
``functools.wraps``, the *undecorated* bodies stay reachable as
``method.__wrapped__`` — so :class:`BaselineSearch` below is literally the
pre-PR code, and the comparison is honest rather than "disabled vs
enabled".

Protocol: the fig6a monochromatic workload (8000 objects, 64x64 grid,
IGERN), identical seeds so both variants see byte-identical movement;
per-tick query times over ``TICKS`` ticks, element-wise min over
``ROUNDS`` alternating rounds (tick *t* does identical work in every
round and variant, so the per-tick min discards scheduler noise).  The
acceptance bound: instrumented-but-disabled within 5% of baseline.  The
enabled-tracing cost is reported alongside for reference (not bounded).

Results land in ``benchmarks/results/obs-overhead.txt``.
"""

from __future__ import annotations

import time

from conftest import RESULTS_DIR

from repro import obs
from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.grid.search import GridSearch
from repro.queries import IGERNMonoQuery, QueryPosition

TICKS = 50
ROUNDS = 7
OVERHEAD_BOUND = 0.05


class BaselineSearch(GridSearch):
    """GridSearch with the pre-PR (undecorated) search-primitive bodies."""

    nearest = GridSearch.nearest.__wrapped__
    k_nearest = GridSearch.k_nearest.__wrapped__
    count_closer_than = GridSearch.count_closer_than.__wrapped__
    first_closer_than = GridSearch.first_closer_than.__wrapped__
    objects_within = GridSearch.objects_within.__wrapped__
    region_objects_by_distance = GridSearch.region_objects_by_distance.__wrapped__


def _make_workload(search_cls):
    """A fig6a simulator with one IGERN query using ``search_cls``."""
    sim = build_simulator(WorkloadSpec(n_objects=8000, grid_size=64, seed=7))
    qid = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    # Swap unconditionally so both variants build identical object graphs.
    search = search_cls(sim.grid)
    query.search = search
    query._algo.search = search
    query.initial()
    return sim, query


def _run_lockstep(ticks: int = TICKS):
    """Per-tick times for baseline and instrumented, measured in lockstep.

    Two simulators with identical seeds advance through byte-identical
    movement; at every tick both queries execute back to back (order
    alternating by tick parity), so noise — frequency scaling, scheduler
    preemption, cache pressure — hits both variants almost equally.
    Movement is applied outside the timed regions; only ``query.tick()``
    is measured — the per-tick CPU quantity the paper plots.
    """
    sim_b, query_b = _make_workload(BaselineSearch)
    sim_i, query_i = _make_workload(GridSearch)
    clock = time.perf_counter
    times_b, times_i = [], []
    for t in range(ticks):
        for sim in (sim_b, sim_i):
            for oid, pos in sim.generator.step(1.0):
                sim.grid.move(oid, pos)
        pair = [(query_b, times_b), (query_i, times_i)]
        if t % 2:
            pair.reverse()
        for query, bucket in pair:
            t0 = clock()
            query.tick()
            bucket.append(clock() - t0)
    return times_b, times_i


def _tick_floor(rounds: list) -> float:
    """Sum of element-wise minima: the noise-free cost of the tick series."""
    return sum(map(min, zip(*rounds)))


def test_disabled_tracing_overhead_on_fig6a():
    assert not obs.enabled(), "tracing must be off for the disabled-path run"

    baseline_times = []
    instrumented_times = []
    for _ in range(ROUNDS):
        times_b, times_i = _run_lockstep()
        baseline_times.append(times_b)
        instrumented_times.append(times_i)
    baseline = _tick_floor(baseline_times)
    instrumented = _tick_floor(instrumented_times)
    overhead = instrumented / baseline - 1.0

    tracer = obs.get_tracer()
    try:
        obs.enable(metrics=False)
        tracer.clear()
        sim_i, query_i = _make_workload(GridSearch)
        clock = time.perf_counter
        enabled_time = 0.0
        for _ in range(TICKS):
            for oid, pos in sim_i.generator.step(1.0):
                sim_i.grid.move(oid, pos)
            t0 = clock()
            query_i.tick()
            enabled_time += clock() - t0
        n_spans = len(tracer.spans())
    finally:
        obs.disable(clear=True)
    enabled_overhead = enabled_time / baseline - 1.0

    RESULTS_DIR.mkdir(exist_ok=True)
    report = "\n".join(
        [
            "observability overhead, fig6a workload"
            " (8000 objects, 64x64 grid, IGERN mono, "
            f"{TICKS} ticks, per-tick min over {ROUNDS} rounds)",
            "",
            f"  pre-PR hot path (undecorated bodies):  {baseline * 1e3:8.2f} ms",
            f"  instrumented, tracing disabled:        {instrumented * 1e3:8.2f} ms"
            f"  ({overhead:+.1%})",
            f"  instrumented, tracing enabled:         {enabled_time * 1e3:8.2f} ms"
            f"  ({enabled_overhead:+.1%}, {n_spans} spans retained)",
            "",
            f"  bound: disabled overhead <= {OVERHEAD_BOUND:.0%}",
        ]
    )
    (RESULTS_DIR / "obs-overhead.txt").write_text(report + "\n")
    print("\n" + report)

    assert overhead <= OVERHEAD_BOUND, (
        f"disabled-tracing overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BOUND:.0%} (instrumented {instrumented:.4f}s "
        f"vs baseline {baseline:.4f}s)"
    )


def test_baseline_and_instrumented_answers_match():
    """Swapping in the undecorated bodies changes timing only, not answers."""
    sim_a = build_simulator(WorkloadSpec(n_objects=1000, grid_size=32, seed=3))
    sim_b = build_simulator(WorkloadSpec(n_objects=1000, grid_size=32, seed=3))
    qa = IGERNMonoQuery(sim_a.grid, QueryPosition(sim_a.grid, query_id=central_object(sim_a)))
    qb = IGERNMonoQuery(sim_b.grid, QueryPosition(sim_b.grid, query_id=central_object(sim_b)))
    search = BaselineSearch(sim_b.grid)
    qb.search = search
    qb._algo.search = search
    assert qa.initial() == qb.initial()
    for _ in range(5):
        for oid, pos in sim_a.generator.step(1.0):
            sim_a.grid.move(oid, pos)
        for oid, pos in sim_b.generator.step(1.0):
            sim_b.grid.move(oid, pos)
        assert qa.tick() == qb.tick()
