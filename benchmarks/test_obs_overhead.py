"""Observability overhead: disabled tracing vs the pre-PR hot path.

The search primitives (``GridSearch.nearest`` and friends) are wrapped by
the ``_traced`` decorator, whose disabled path is a single attribute check
before falling through to the original body.  Because the decorator uses
``functools.wraps``, the *undecorated* bodies stay reachable as
``method.__wrapped__`` — so :class:`BaselineSearch` below is literally the
pre-PR code, and the comparison is honest rather than "disabled vs
enabled".

Protocol: the fig6a monochromatic workload (8000 objects, 64x64 grid,
IGERN), identical seeds so both variants see byte-identical movement;
per-tick query times over ``TICKS`` ticks, element-wise min over
``ROUNDS`` alternating rounds (tick *t* does identical work in every
round and variant, so the per-tick min discards scheduler noise).  The
acceptance bound: instrumented-but-disabled within 5% of baseline.  The
enabled-tracing cost is reported alongside for reference (not bounded).

Results land in ``benchmarks/results/obs-overhead.txt``.
"""

from __future__ import annotations

import time

import test_tick_throughput as tick_bench
from conftest import RESULTS_DIR

from repro import obs
from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.grid.search import GridSearch
from repro.obs.ledger import QueryCostLedger
from repro.queries import IGERNMonoQuery, QueryPosition

TICKS = 50
ROUNDS = 7
OVERHEAD_BOUND = 0.05
#: Cost-ledger bounds (ISSUE 6): the fully attributing ledger within 5%
#: of the bare engine; attached-but-disabled (the default) within 1%.
LEDGER_ENABLED_BOUND = 0.05
LEDGER_DISABLED_BOUND = 0.01
#: The flight recorder retains references to every tick's raw event
#: lists for window replay; fig6a (all 8000 objects moving every tick)
#: is its retention worst case, so it gets its own generous bound rather
#: than sharing the ledger's.
FLIGHT_BOUND = 0.05
LEDGER_TICKS = 40
LEDGER_ROUNDS = 5


class BaselineSearch(GridSearch):
    """GridSearch with the pre-PR (undecorated) search-primitive bodies."""

    nearest = GridSearch.nearest.__wrapped__
    k_nearest = GridSearch.k_nearest.__wrapped__
    count_closer_than = GridSearch.count_closer_than.__wrapped__
    first_closer_than = GridSearch.first_closer_than.__wrapped__
    objects_within = GridSearch.objects_within.__wrapped__
    region_objects_by_distance = GridSearch.region_objects_by_distance.__wrapped__


def _make_workload(search_cls):
    """A fig6a simulator with one IGERN query using ``search_cls``."""
    sim = build_simulator(WorkloadSpec(n_objects=8000, grid_size=64, seed=7))
    qid = central_object(sim)
    query = IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid))
    # Swap unconditionally so both variants build identical object graphs.
    search = search_cls(sim.grid)
    query.search = search
    query._algo.search = search
    query.initial()
    return sim, query


def _run_lockstep(ticks: int = TICKS):
    """Per-tick times for baseline and instrumented, measured in lockstep.

    Two simulators with identical seeds advance through byte-identical
    movement; at every tick both queries execute back to back (order
    alternating by tick parity), so noise — frequency scaling, scheduler
    preemption, cache pressure — hits both variants almost equally.
    Movement is applied outside the timed regions; only ``query.tick()``
    is measured — the per-tick CPU quantity the paper plots.
    """
    sim_b, query_b = _make_workload(BaselineSearch)
    sim_i, query_i = _make_workload(GridSearch)
    clock = time.perf_counter
    times_b, times_i = [], []
    for t in range(ticks):
        for sim in (sim_b, sim_i):
            for oid, pos in sim.generator.step(1.0):
                sim.grid.move(oid, pos)
        pair = [(query_b, times_b), (query_i, times_i)]
        if t % 2:
            pair.reverse()
        for query, bucket in pair:
            t0 = clock()
            query.tick()
            bucket.append(clock() - t0)
    return times_b, times_i


def _tick_floor(rounds: list) -> float:
    """Sum of element-wise minima: the noise-free cost of the tick series."""
    return sum(map(min, zip(*rounds)))


def test_disabled_tracing_overhead_on_fig6a():
    assert not obs.enabled(), "tracing must be off for the disabled-path run"

    baseline_times = []
    instrumented_times = []
    for _ in range(ROUNDS):
        times_b, times_i = _run_lockstep()
        baseline_times.append(times_b)
        instrumented_times.append(times_i)
    baseline = _tick_floor(baseline_times)
    instrumented = _tick_floor(instrumented_times)
    overhead = instrumented / baseline - 1.0

    tracer = obs.get_tracer()
    try:
        obs.enable(metrics=False)
        tracer.clear()
        sim_i, query_i = _make_workload(GridSearch)
        clock = time.perf_counter
        enabled_time = 0.0
        for _ in range(TICKS):
            for oid, pos in sim_i.generator.step(1.0):
                sim_i.grid.move(oid, pos)
            t0 = clock()
            query_i.tick()
            enabled_time += clock() - t0
        n_spans = len(tracer.spans())
    finally:
        obs.disable(clear=True)
    enabled_overhead = enabled_time / baseline - 1.0

    RESULTS_DIR.mkdir(exist_ok=True)
    report = "\n".join(
        [
            "observability overhead, fig6a workload"
            " (8000 objects, 64x64 grid, IGERN mono, "
            f"{TICKS} ticks, per-tick min over {ROUNDS} rounds)",
            "",
            f"  pre-PR hot path (undecorated bodies):  {baseline * 1e3:8.2f} ms",
            f"  instrumented, tracing disabled:        {instrumented * 1e3:8.2f} ms"
            f"  ({overhead:+.1%})",
            f"  instrumented, tracing enabled:         {enabled_time * 1e3:8.2f} ms"
            f"  ({enabled_overhead:+.1%}, {n_spans} spans retained)",
            "",
            f"  bound: disabled overhead <= {OVERHEAD_BOUND:.0%}",
        ]
    )
    (RESULTS_DIR / "obs-overhead.txt").write_text(report + "\n")
    print("\n" + report)

    assert overhead <= OVERHEAD_BOUND, (
        f"disabled-tracing overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BOUND:.0%} (instrumented {instrumented:.4f}s "
        f"vs baseline {baseline:.4f}s)"
    )


def _make_ledger_sim(ledger, flight: bool):
    """A fig6a simulator in one of the ledger-overhead configurations.

    ``ledger`` is ``False`` (detached), ``None`` (the default: global
    ledger, disabled), or an enabled :class:`QueryCostLedger` instance;
    ``flight`` toggles the tick flight recorder.
    """
    sim = build_simulator(WorkloadSpec(n_objects=8000, grid_size=64, seed=7))
    if ledger is False:
        sim.ledger = None
    elif ledger is not None:
        sim.ledger = ledger
    if not flight:
        sim.flight = None
    qid = central_object(sim)
    sim.add_query("q", IGERNMonoQuery(sim.grid, QueryPosition(sim.grid, query_id=qid)))
    sim.execute_queries()  # initial pass, untimed
    return sim


def _run_sim_lockstep(factories, ticks: int = LEDGER_TICKS):
    """Per-tick full ``Simulator.step`` times for each configuration.

    Same protocol as :func:`_run_lockstep`, but through the engine's own
    tick loop — the ledger's cost lives in ``execute_queries`` glue and
    the phase timers, which direct ``query.tick()`` calls never exercise.
    Each simulator owns an identically seeded generator, so all variants
    replay byte-identical movement.
    """
    sims = [factory() for factory in factories]
    buckets = [[] for _ in sims]
    clock = time.perf_counter
    for t in range(ticks):
        order = list(range(len(sims)))
        if t % 2:
            order.reverse()
        for i in order:
            t0 = clock()
            sims[i].step()
            buckets[i].append(clock() - t0)
    return buckets


def _ledger_overhead(variant_factory):
    """Overhead of one configuration vs. the bare engine, measured as a
    *pairwise* lockstep (two simulators alternating per tick) — the same
    noise-cancelling protocol as :func:`_run_lockstep`; interleaving more
    than two variants makes the interior positions systematically
    mismeasure.  Returns ``(overhead, bare_seconds, variant_seconds)``.
    """
    rounds_bare, rounds_variant = [], []
    for _ in range(LEDGER_ROUNDS):
        bare, variant = _run_sim_lockstep(
            [lambda: _make_ledger_sim(False, flight=False), variant_factory]
        )
        rounds_bare.append(bare)
        rounds_variant.append(variant)
    bare = _tick_floor(rounds_bare)
    variant = _tick_floor(rounds_variant)
    return variant / bare - 1.0, bare, variant


def test_cost_ledger_overhead_on_fig6a():
    """The per-query cost ledger honors the ISSUE 6 overhead budget.

    Enabled (every phase timed, every search op attributed) within
    ``LEDGER_ENABLED_BOUND`` of the bare engine; attached but disabled
    (the default engine configuration) within ``LEDGER_DISABLED_BOUND``.
    The flight recorder is off in the ledger variants so each bound
    isolates the ledger; the flight recorder's own cost — dominated by
    retaining every tick's raw event lists for window replay, and fig6a
    moves the whole population every tick — is bounded separately.
    """
    def enabled_factory():
        ledger = QueryCostLedger()
        ledger.enable()
        return _make_ledger_sim(ledger, flight=False)

    disabled_overhead, bare_d, disabled = _ledger_overhead(
        lambda: _make_ledger_sim(None, flight=False)
    )
    enabled_overhead, bare_e, enabled = _ledger_overhead(enabled_factory)
    flight_overhead, bare_f, flight = _ledger_overhead(
        lambda: _make_ledger_sim(False, flight=True)
    )

    report = "\n".join(
        [
            "cost-ledger overhead, fig6a workload (8000 objects, 64x64"
            f" grid, IGERN mono, {LEDGER_TICKS} full engine ticks,"
            " pairwise lockstep vs the bare engine, per-tick min over"
            f" {LEDGER_ROUNDS} rounds)",
            "",
            f"  ledger attached, disabled (default):   {disabled * 1e3:8.2f} ms"
            f" vs {bare_d * 1e3:8.2f} ms bare  ({disabled_overhead:+.1%})",
            f"  ledger enabled (full attribution):     {enabled * 1e3:8.2f} ms"
            f" vs {bare_e * 1e3:8.2f} ms bare  ({enabled_overhead:+.1%})",
            f"  flight recorder on (no ledger):        {flight * 1e3:8.2f} ms"
            f" vs {bare_f * 1e3:8.2f} ms bare  ({flight_overhead:+.1%})",
            "",
            f"  bounds: ledger disabled <= {LEDGER_DISABLED_BOUND:.0%},"
            f" ledger enabled <= {LEDGER_ENABLED_BOUND:.0%},"
            f" flight <= {FLIGHT_BOUND:.0%}",
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ledger-overhead.txt").write_text(report + "\n")
    print("\n" + report)

    assert disabled_overhead <= LEDGER_DISABLED_BOUND, (
        f"disabled-ledger overhead {disabled_overhead:.2%} exceeds"
        f" {LEDGER_DISABLED_BOUND:.0%}"
    )
    assert enabled_overhead <= LEDGER_ENABLED_BOUND, (
        f"enabled-ledger overhead {enabled_overhead:.2%} exceeds"
        f" {LEDGER_ENABLED_BOUND:.0%}"
    )
    assert flight_overhead <= FLIGHT_BOUND, (
        f"flight-recorder overhead {flight_overhead:.2%} exceeds"
        f" {FLIGHT_BOUND:.0%}"
    )


def test_ledger_attribution_on_tick_throughput_workload():
    """Attributed wall time explains >=90% of the measured tick wall.

    The BENCH_tick_throughput workload (16 bi queries, scheduler on):
    per tick, movement plus the per-query walls recorded by the ledger
    must account for at least 90% of the tick's measured total — the
    ledger is only trustworthy if the time it attributes is nearly all
    the time there is.
    """
    workload = tick_bench._make_workload()
    sim = tick_bench._build(workload, scheduler=True)
    ledger = QueryCostLedger()
    ledger.enable()
    sim.ledger = ledger
    sim.execute_queries()  # initial pass opens tick 0 without totals
    for _ in range(tick_bench.N_TICKS):
        sim.step()

    fractions = [
        record.attributed_fraction()
        for record in ledger.records()
        if record.attributed_fraction() is not None
    ]
    assert len(fractions) == tick_bench.N_TICKS
    mean = sum(fractions) / len(fractions)
    print(
        f"\nledger attribution over {len(fractions)} ticks:"
        f" mean {mean:.1%}, min {min(fractions):.1%},"
        f" max {max(fractions):.1%}"
    )
    assert mean >= 0.90, f"mean attributed fraction {mean:.1%} below 90%"
    # Attribution must never materially exceed the measurement itself.
    assert max(fractions) <= 1.05


def test_baseline_and_instrumented_answers_match():
    """Swapping in the undecorated bodies changes timing only, not answers."""
    sim_a = build_simulator(WorkloadSpec(n_objects=1000, grid_size=32, seed=3))
    sim_b = build_simulator(WorkloadSpec(n_objects=1000, grid_size=32, seed=3))
    qa = IGERNMonoQuery(sim_a.grid, QueryPosition(sim_a.grid, query_id=central_object(sim_a)))
    qb = IGERNMonoQuery(sim_b.grid, QueryPosition(sim_b.grid, query_id=central_object(sim_b)))
    search = BaselineSearch(sim_b.grid)
    qb.search = search
    qb._algo.search = search
    assert qa.initial() == qb.initial()
    for _ in range(5):
        for oid, pos in sim_a.generator.step(1.0):
            sim_a.grid.move(oid, pos)
        for oid, pos in sim_b.generator.step(1.0):
            sim_b.grid.move(oid, pos)
        assert qa.tick() == qb.tick()
