"""Seed-wise statistical robustness of the headline comparisons.

Individual figure runs measure sub-millisecond steps once per
configuration; this module repeats the two headline comparisons over five
seeds and asserts the paper's claims on the *means* — the statistically
meaningful form of "IGERN outperforms the baselines".
"""

from conftest import emit

from repro.experiments import figures
from repro.experiments.harness import repeat_with_seeds

SEEDS = [3, 7, 11, 19, 23]


def test_mono_wins_across_seeds(benchmark):
    result = benchmark.pedantic(
        lambda: repeat_with_seeds(
            lambda scale=None, seed=7: figures.fig6(scale=scale, seed=seed)["fig6a"],
            SEEDS,
            scale=0.5,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    igern = result.series_by_name("IGERN").y
    crnn = result.series_by_name("CRNN").y
    # On seed-wise means, IGERN wins at every object count.
    assert all(i < c for i, c in zip(igern, crnn))
    # And by a real margin overall (the paper's factor is 2-3x).
    assert sum(crnn) > 1.5 * sum(igern)


def test_bi_wins_across_seeds(benchmark):
    result = benchmark.pedantic(
        lambda: repeat_with_seeds(
            lambda scale=None, seed=7: figures.fig8(scale=scale, seed=seed)["fig8a"],
            SEEDS,
            scale=0.5,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    igern = result.series_by_name("IGERN").y
    voronoi = result.series_by_name("Voronoi").y
    assert sum(igern) < sum(voronoi)
    wins = sum(1 for i, v in zip(igern, voronoi) if i < v)
    assert wins >= len(igern) - 1
