"""Shared helpers for the benchmark suite.

Every figure of the paper's evaluation has one module here.  Each module
contains

- a ``test_*_table`` benchmark that regenerates the figure's data once,
  asserts the paper's qualitative shape, and writes the table (text + CSV)
  into ``benchmarks/results/``;
- per-algorithm microbenchmarks timing one incremental tick on a live
  workload (movement applied in the setup hook, so only the query
  execution is measured — the quantity the paper plots).

Workload sizes scale with ``IGERN_SCALE`` (default 1.0 keeps the whole
suite around a minute; ~10 approaches the paper's sizes).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine.workload import WorkloadSpec, build_simulator, central_object
from repro.experiments.report import experiment_table, write_csv
from repro.queries.base import QueryPosition

RESULTS_DIR = Path(__file__).parent / "results"


def emit(results) -> None:
    """Write one or more ExperimentResults to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if not isinstance(results, dict):
        results = {results.exp_id: results}
    for result in results.values():
        text = experiment_table(result)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        write_csv(result, RESULTS_DIR / f"{result.exp_id}.csv")
        print("\n" + text)


class LiveWorkload:
    """A simulator plus one registered query, steppable per benchmark round."""

    def __init__(self, spec: WorkloadSpec, query_factory, category=None):
        self.sim = build_simulator(spec)
        qid = central_object(self.sim, category)
        self.position = QueryPosition(self.sim.grid, query_id=qid)
        self.query = query_factory(self.sim.grid, self.position)
        self.query.initial()

    def advance(self):
        """Apply one tick of movement (the benchmark setup hook)."""
        for oid, pos in self.sim.generator.step(1.0):
            self.sim.grid.move(oid, pos)
        return (), {}

    def tick(self):
        return self.query.tick()


def bench_tick(benchmark, workload: LiveWorkload, rounds: int = 25) -> None:
    """Benchmark one incremental query execution per movement tick."""
    benchmark.pedantic(
        workload.tick,
        setup=workload.advance,
        rounds=rounds,
        iterations=1,
        warmup_rounds=2,
    )
