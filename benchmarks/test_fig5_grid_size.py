"""Figure 5: effect of the grid size.

(a) number of cell changes vs grid size — grows monotonically with the
    resolution (grid maintenance overhead);
(b) CPU time vs grid size — U-shaped: small grids overload each cell,
    large grids multiply maintenance; the best sits at intermediate sizes.
"""

from conftest import LiveWorkload, bench_tick, emit

from repro.engine.workload import WorkloadSpec
from repro.experiments import figures
from repro.queries import IGERNMonoQuery


def test_fig5_table(benchmark):
    results = benchmark.pedantic(
        lambda: figures.fig5(), rounds=1, iterations=1
    )
    emit(results)

    changes = results["fig5a"].series[0].y
    assert all(b >= a for a, b in zip(changes, changes[1:])), (
        "cell changes must grow with grid resolution"
    )
    assert changes[-1] > 2 * changes[0]

    times = results["fig5b"].series_by_name("IGERN").y
    grids = results["fig5b"].x
    best = grids[times.index(min(times))]
    # The optimum must be an intermediate size, not an extreme (U-shape).
    assert grids[0] < best < grids[-1], f"expected U-shape, optimum at {best}"


def _workload(grid_size):
    spec = WorkloadSpec(n_objects=4000, grid_size=grid_size, seed=7)
    return LiveWorkload(spec, lambda grid, pos: IGERNMonoQuery(grid, pos))


def test_fig5_tick_grid_8(benchmark):
    bench_tick(benchmark, _workload(8))


def test_fig5_tick_grid_64(benchmark):
    bench_tick(benchmark, _workload(64))


def test_fig5_tick_grid_256(benchmark):
    bench_tick(benchmark, _workload(256))
